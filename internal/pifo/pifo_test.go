package pifo

import (
	"math/rand"
	"sort"
	"testing"
)

// TestQueuePopsInRankOrder pins the core PIFO contract: Pop always
// returns the smallest rank, FIFO among equal ranks.
func TestQueuePopsInRankOrder(t *testing.T) {
	q := NewQueue[int](64)
	ranks := []uint64{5, 1, 3, 1, 9, 0, 3, 7, 1}
	for v, r := range ranks {
		if !q.Push(v, r) {
			t.Fatalf("Push(%d, %d) refused below capacity", v, r)
		}
	}
	type popped struct {
		v    int
		rank uint64
	}
	var got []popped
	for {
		v, r, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, popped{v, r})
	}
	if len(got) != len(ranks) {
		t.Fatalf("popped %d entries, pushed %d", len(got), len(ranks))
	}
	for i := 1; i < len(got); i++ {
		if got[i].rank < got[i-1].rank {
			t.Fatalf("rank order violated at %d: %v", i, got)
		}
		// FIFO among equal ranks: values were pushed in increasing order.
		if got[i].rank == got[i-1].rank && got[i].v < got[i-1].v {
			t.Fatalf("FIFO tie-break violated at %d: %v", i, got)
		}
	}
}

// TestQueueRandomizedAgainstSort drives random push/pop interleavings
// and checks every drain against a stable sort of what was resident.
func TestQueueRandomizedAgainstSort(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	q := NewQueue[uint64](128)
	type item struct {
		rank uint64
		seq  int
	}
	var resident []item
	seq := 0
	for round := 0; round < 2000; round++ {
		if rnd.Intn(3) > 0 && q.Len() < q.Cap() {
			r := uint64(rnd.Intn(16))
			q.Push(r, r)
			resident = append(resident, item{rank: r, seq: seq})
			seq++
			continue
		}
		v, r, ok := q.Pop()
		if ok != (len(resident) > 0) {
			t.Fatalf("round %d: Pop ok=%v with %d resident", round, ok, len(resident))
		}
		if !ok {
			continue
		}
		sort.SliceStable(resident, func(a, b int) bool {
			if resident[a].rank != resident[b].rank {
				return resident[a].rank < resident[b].rank
			}
			return resident[a].seq < resident[b].seq
		})
		if want := resident[0]; r != want.rank || v != want.rank {
			t.Fatalf("round %d: Pop = (%d, %d), want rank %d", round, v, r, want.rank)
		}
		resident = resident[1:]
	}
}

// TestQueueBoundsAndDrain pins the capacity refusal and Drain ordering.
func TestQueueBoundsAndDrain(t *testing.T) {
	q := NewQueue[int](4)
	for i := 0; i < 4; i++ {
		if !q.Push(i, uint64(4-i)) {
			t.Fatalf("Push %d refused below capacity", i)
		}
	}
	if q.Push(99, 0) {
		t.Fatal("Push accepted beyond capacity")
	}
	if _, r, ok := q.Peek(); !ok || r != 1 {
		t.Fatalf("Peek = rank %d ok=%v, want rank 1", r, ok)
	}
	var order []int
	if n := q.Drain(func(v int) { order = append(order, v) }); n != 4 {
		t.Fatalf("Drain returned %d, want 4", n)
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty after Drain: %d", q.Len())
	}
	for i := 1; i < len(order); i++ {
		if order[i] > order[i-1] {
			continue
		}
		// ranks were 4,3,2,1 for values 0..3 → drain order must be 3,2,1,0
	}
	want := []int{3, 2, 1, 0}
	for i, v := range order {
		if v != want[i] {
			t.Fatalf("Drain order %v, want %v", order, want)
		}
	}
}

func testClasses() []Class {
	return []Class{
		{Name: "rt", Priority: 0, Weight: 4, SLOSlots: 16},
		{Name: "quick", Priority: 1, Weight: 2, SLOSlots: 64},
		{Name: "bulk", Priority: 2, Weight: 1},
	}
}

// TestStrictRankerOrders pins strict priority: every rt frame outranks
// every bulk frame regardless of arrival order.
func TestStrictRankerOrders(t *testing.T) {
	rk, err := NewRanker(RankStrict, testClasses())
	if err != nil {
		t.Fatal(err)
	}
	q := NewQueue[int](8)
	q.Push(2, rk.Rank(2, 0, -1)) // bulk first
	q.Push(0, rk.Rank(0, 1, -1)) // rt second
	q.Push(1, rk.Rank(1, 2, -1)) // quick third
	var order []int
	q.Drain(func(v int) { order = append(order, v) })
	if order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("strict drain order %v, want [0 1 2]", order)
	}
}

// TestDeadlineRankerOrders pins EDF: earlier absolute deadlines first,
// deadline-less frames last (by priority).
func TestDeadlineRankerOrders(t *testing.T) {
	rk, err := NewRanker(RankDeadline, testClasses())
	if err != nil {
		t.Fatal(err)
	}
	q := NewQueue[string](8)
	q.Push("bulk-none", rk.Rank(2, 0, -1))
	q.Push("rt-late", rk.Rank(0, 0, 100))
	q.Push("quick-early", rk.Rank(1, 0, 50))
	var order []string
	q.Drain(func(v string) { order = append(order, v) })
	want := []string{"quick-early", "rt-late", "bulk-none"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("deadline drain order %v, want %v", order, want)
		}
	}
}

// TestWFQRankerShares pins the weighted-fair property: under sustained
// contention a weight-4 class drains ~4× the frames of a weight-1 class
// over any long window.
func TestWFQRankerShares(t *testing.T) {
	classes := testClasses()
	rk, err := NewRanker(RankWFQ, classes)
	if err != nil {
		t.Fatal(err)
	}
	q := NewQueue[int](1024)
	// Keep all three classes saturated; serve one frame per round and
	// count services per class.
	served := make([]int, len(classes))
	backlog := make([]int, len(classes))
	push := func(ci int) {
		if q.Push(ci, rk.Rank(ci, 0, -1)) {
			backlog[ci]++
		}
	}
	for ci := range classes {
		for k := 0; k < 8; k++ {
			push(ci)
		}
	}
	for round := 0; round < 7000; round++ {
		ci, rank, ok := q.Pop()
		if !ok {
			t.Fatal("queue drained under saturation")
		}
		rk.OnPop(rank)
		served[ci]++
		backlog[ci]--
		push(ci) // keep the class saturated
	}
	// weights 4:2:1 → expected shares 4/7, 2/7, 1/7.
	total := served[0] + served[1] + served[2]
	for ci, w := range []float64{4, 2, 1} {
		got := float64(served[ci]) / float64(total)
		want := w / 7
		if got < want*0.95 || got > want*1.05 {
			t.Fatalf("class %d served share %.3f, want %.3f ±5%% (served %v)", ci, got, want, served)
		}
	}
}

// TestWFQIdleClassCannotHoard pins the virtual-clock clamp: a class
// that was idle while others drained re-enters at the current virtual
// time instead of monopolizing the link to "catch up".
func TestWFQIdleClassCannotHoard(t *testing.T) {
	classes := []Class{
		{Name: "a", Priority: 0, Weight: 1},
		{Name: "b", Priority: 1, Weight: 1},
	}
	rk, _ := NewRanker(RankWFQ, classes)
	q := NewQueue[int](256)
	// Class a runs alone for a long stretch.
	for k := 0; k < 100; k++ {
		q.Push(0, rk.Rank(0, 0, -1))
		v, rank, _ := q.Pop()
		rk.OnPop(rank)
		_ = v
	}
	// Now both compete. With equal weights the split over the next
	// window must be ~50/50, not b-first-100-times.
	served := make([]int, 2)
	for k := 0; k < 8; k++ {
		q.Push(0, rk.Rank(0, 0, -1))
		q.Push(1, rk.Rank(1, 0, -1))
	}
	for round := 0; round < 200; round++ {
		ci, rank, ok := q.Pop()
		if !ok {
			t.Fatal("queue drained")
		}
		rk.OnPop(rank)
		served[ci]++
		q.Push(ci, rk.Rank(ci, 0, -1))
	}
	if served[0] < 90 || served[1] < 90 {
		t.Fatalf("post-idle split %v, want ~100/100", served)
	}
}

// TestParseClasses pins the -classes flag grammar.
func TestParseClasses(t *testing.T) {
	got, err := ParseClasses("rt:0:4:16,quick:1:2:64,bulk")
	if err != nil {
		t.Fatal(err)
	}
	want := []Class{
		{Name: "rt", Priority: 0, Weight: 4, SLOSlots: 16},
		{Name: "quick", Priority: 1, Weight: 2, SLOSlots: 64},
		{Name: "bulk", Priority: 2, Weight: 1, SLOSlots: 0},
	}
	if len(got) != len(want) {
		t.Fatalf("ParseClasses = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("class %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	for _, bad := range []string{
		"", "rt,rt", "RT", "rt:x", "rt:-1", "rt:0:0", "rt:0:1:-5", "rt:0:1:2:3",
	} {
		if _, err := ParseClasses(bad); err == nil {
			t.Fatalf("ParseClasses(%q) accepted", bad)
		}
	}
}

// TestRankZeroAlloc pins the hot path: Push+Rank+Pop+OnPop never
// allocate, for every registered ranker. The decision benchmark
// measures the same property with -benchmem; this test enforces it
// deterministically in the plain test run.
func TestRankZeroAlloc(t *testing.T) {
	classes := testClasses()
	for _, name := range Names() {
		rk, err := NewRanker(name, classes)
		if err != nil {
			t.Fatal(err)
		}
		q := NewQueue[uint64](256)
		ci := 0
		allocs := testing.AllocsPerRun(1000, func() {
			ci = (ci + 1) % len(classes)
			q.Push(uint64(ci), rk.Rank(ci, 10, 26))
			if q.Len() > 128 {
				_, rank, _ := q.Pop()
				rk.OnPop(rank)
			}
		})
		if allocs != 0 {
			t.Errorf("ranker %s: %v allocs/op on the push/pop path, want 0", name, allocs)
		}
	}
}
