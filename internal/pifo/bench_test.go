package pifo

import (
	"fmt"
	"testing"
)

// BenchmarkPIFODecision measures the per-frame class-tier decision: one
// Rank + Push + Pop + OnPop cycle against a half-full queue, per
// registered ranker. This is the cost AdmitClass adds over Admit plus
// the fill-phase pop, and the acceptance gate is 0 allocs/op (also
// pinned deterministically by TestRankZeroAlloc).
func BenchmarkPIFODecision(b *testing.B) {
	classes := []Class{
		{Name: "rt", Priority: 0, Weight: 4, SLOSlots: 16},
		{Name: "quick", Priority: 1, Weight: 2, SLOSlots: 64},
		{Name: "bulk", Priority: 2, Weight: 1},
	}
	for _, name := range Names() {
		for _, depth := range []int{16, 256} {
			b.Run(fmt.Sprintf("%s/depth%d", name, depth), func(b *testing.B) {
				rk, err := NewRanker(name, classes)
				if err != nil {
					b.Fatal(err)
				}
				q := NewQueue[uint64](depth)
				for q.Len() < depth/2 {
					ci := q.Len() % len(classes)
					q.Push(uint64(ci), rk.Rank(ci, 0, int64(q.Len())))
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ci := i % len(classes)
					now := int64(i)
					q.Push(uint64(ci), rk.Rank(ci, now, now+classes[ci].SLOSlots))
					_, rank, _ := q.Pop()
					rk.OnPop(rank)
				}
			})
		}
	}
}
