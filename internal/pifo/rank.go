package pifo

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Ranker assigns the rank a frame carries into its PIFO queue. Lower
// ranks dequeue first. Rank runs on the admission hot path under the
// input's shard lock, so implementations must be allocation-free; a
// Ranker instance serves exactly one queue (the WFQ ranker keeps
// per-class virtual-time state), so the runtime builds one per
// (input, output) pair via NewRanker.
type Ranker interface {
	// Name returns the registered ranker name.
	Name() string
	// Rank computes the rank for a frame of class index ci admitted at
	// slot now carrying absolute deadline slot deadline (< 0 = none).
	Rank(ci int, now, deadline int64) uint64
	// OnPop observes the rank of every entry dequeued from this
	// ranker's queue, letting virtual-time disciplines advance their
	// clock. Stateless rankers ignore it.
	OnPop(rank uint64)
}

// The registered rank functions:
//
//   - fifo: every frame ranks 0, so the PIFO degenerates to the queue's
//     push-order tie-break — the classless baseline E32 compares
//     against.
//   - strict: rank = class priority. The lowest-priority-number class
//     always drains first; lower classes see service only when every
//     more-urgent PIFO ahead of the same VOQ is empty. Starvation is
//     the point — pair with WFQ weights if that is not wanted.
//   - wfq: start-time fair queuing on a per-queue virtual clock. Each
//     class accumulates virtual finish times in steps of 2^16/weight,
//     clamped forward to the clock on push so an idle class cannot
//     hoard credit; the clock follows the rank of each dequeued entry.
//     Classes share the link in weight proportion under contention.
//   - deadline: earliest-deadline-first. Frames rank by absolute
//     deadline slot; deadline-less frames rank behind every dated one,
//     ordered by class priority then arrival.
const (
	RankFIFO     = "fifo"
	RankStrict   = "strict"
	RankWFQ      = "wfq"
	RankDeadline = "deadline"
)

// NewRanker returns a fresh instance of the named rank function ("" means
// fifo) for one queue over the given class list. Unknown names list the
// registry, so a -rank typo fails fast and self-explains.
func NewRanker(name string, classes []Class) (Ranker, error) {
	if err := ValidateClasses(classes); err != nil {
		return nil, err
	}
	switch name {
	case "", RankFIFO:
		return fifoRanker{}, nil
	case RankStrict:
		return strictRanker{classes: classes}, nil
	case RankWFQ:
		return newWFQRanker(classes), nil
	case RankDeadline:
		return deadlineRanker{classes: classes}, nil
	default:
		return nil, fmt.Errorf("pifo: unknown rank function %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
}

// Names returns the registered rank-function names, sorted. The set is
// pinned by the golden test (testdata/names.golden), like the steering
// policy and scheduler registries' — these names are public API
// (`lcfd -rank`, EXPERIMENTS.md E32, OBSERVABILITY.md).
func Names() []string {
	names := []string{RankFIFO, RankStrict, RankWFQ, RankDeadline}
	sort.Strings(names)
	return names
}

type fifoRanker struct{}

func (fifoRanker) Name() string                  { return RankFIFO }
func (fifoRanker) Rank(int, int64, int64) uint64 { return 0 }
func (fifoRanker) OnPop(uint64)                  {}

type strictRanker struct{ classes []Class }

func (r strictRanker) Name() string { return RankStrict }
func (r strictRanker) Rank(ci int, _, _ int64) uint64 {
	return uint64(r.classes[ci].Priority)
}
func (strictRanker) OnPop(uint64) {}

// wfqScale is the fixed-point virtual-time unit: a weight-w class's
// stride is wfqScale/w, so weight ratios up to 2^16 stay exact.
const wfqScale = 1 << 16

type wfqRanker struct {
	classes []Class
	stride  []uint64
	finish  []uint64 // per-class virtual finish time
	clock   uint64   // rank of the last dequeued entry
}

func newWFQRanker(classes []Class) *wfqRanker {
	r := &wfqRanker{
		classes: classes,
		stride:  make([]uint64, len(classes)),
		finish:  make([]uint64, len(classes)),
	}
	for i, c := range classes {
		r.stride[i] = wfqScale / uint64(c.Weight)
	}
	return r
}

func (r *wfqRanker) Name() string { return RankWFQ }

func (r *wfqRanker) Rank(ci int, _, _ int64) uint64 {
	f := r.finish[ci]
	if f < r.clock {
		f = r.clock // an idle class re-enters at the current virtual time
	}
	f += r.stride[ci]
	r.finish[ci] = f
	return f
}

func (r *wfqRanker) OnPop(rank uint64) {
	if rank > r.clock {
		r.clock = rank
	}
}

// deadlineNone ranks deadline-less frames behind every dated frame
// while leaving headroom to order them by class priority.
const deadlineNone = uint64(math.MaxUint64) >> 8

type deadlineRanker struct{ classes []Class }

func (r deadlineRanker) Name() string { return RankDeadline }

func (r deadlineRanker) Rank(ci int, _, deadline int64) uint64 {
	if deadline < 0 {
		return deadlineNone + uint64(r.classes[ci].Priority)
	}
	return uint64(deadline)
}

func (deadlineRanker) OnPop(uint64) {}
