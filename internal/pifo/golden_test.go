package pifo

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the Names() golden file")

// TestNamesGolden locks the public rank-function name list, exactly like
// the steering-policy and scheduler registries' golden tests: adding,
// renaming or removing a ranker must come with a deliberate update of
// testdata/names.golden (go test ./internal/pifo -update), because these
// names are public API — `lcfd -rank`, EXPERIMENTS.md E32 and
// OBSERVABILITY.md all refer to them.
func TestNamesGolden(t *testing.T) {
	goldenPath := filepath.Join("testdata", "names.golden")
	got := strings.Join(Names(), "\n") + "\n"
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("rank function name list drifted from %s:\n got: %v\nwant: %v\n"+
			"if the change is intentional, regenerate with: go test ./internal/pifo -update",
			goldenPath, Names(), strings.Fields(string(want)))
	}
}

// TestNewRankerRejectsUnknown pins the self-explanatory error contract:
// a -rank typo must fail fast and enumerate the registry.
func TestNewRankerRejectsUnknown(t *testing.T) {
	classes := []Class{{Name: "rt", Weight: 1}}
	if _, err := NewRanker("edf", classes); err == nil {
		t.Fatal("NewRanker accepted an unknown rank function")
	} else {
		for _, name := range Names() {
			if !strings.Contains(err.Error(), name) {
				t.Fatalf("error does not enumerate ranker %q: %v", name, err)
			}
		}
	}
	for _, name := range append(Names(), "") {
		rk, err := NewRanker(name, classes)
		if err != nil || rk == nil {
			t.Fatalf("NewRanker(%q) = %v, %v", name, rk, err)
		}
		if name != "" && rk.Name() != name {
			t.Fatalf("NewRanker(%q).Name() = %q", name, rk.Name())
		}
	}
}
