// Package pifo implements a bounded push-in-first-out (PIFO) priority
// queue and the pluggable rank functions that program it.
//
// A PIFO ("Programmable Packet Scheduling at Line Rate", arXiv:1602.06045)
// separates scheduling *mechanism* from *policy*: the queue always
// dequeues the entry with the smallest rank, and the scheduling
// discipline lives entirely in the function that assigns ranks at push
// time. One data structure therefore expresses strict priority,
// weighted-fair queuing and earliest-deadline-first — the "universal"
// abstraction of arXiv:1510.03551 — without the switch core knowing
// which is active.
//
// The runtime instantiates one Queue plus one Ranker per (input, output)
// pair, in front of the corresponding VOQ: frames wait in rank order in
// the PIFO and trickle into the (depth-limited) VOQ head, so the rank
// decision is taken as late as possible. Both Push and Pop are
// allocation-free on a pre-sized queue; the decision benchmark pins
// 0 allocs/op.
package pifo

import "fmt"

// entry is one queued item: the frame payload plus the rank assigned at
// push time and the push sequence number used to break rank ties FIFO.
type entry[T any] struct {
	rank uint64
	seq  uint64
	val  T
}

// Queue is a bounded PIFO: Push inserts with a caller-supplied rank,
// Pop removes the entry with the smallest rank (FIFO among equal
// ranks). The backing heap is allocated once at construction; Push and
// Pop never allocate. Not safe for concurrent use — the runtime guards
// each queue with its input's shard lock, like the VOQs behind it.
type Queue[T any] struct {
	heap []entry[T]
	cap  int
	seq  uint64
}

// NewQueue returns an empty PIFO holding at most capacity entries.
func NewQueue[T any](capacity int) *Queue[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("pifo: non-positive capacity %d", capacity))
	}
	return &Queue[T]{heap: make([]entry[T], 0, capacity), cap: capacity}
}

// Len returns the number of queued entries.
func (q *Queue[T]) Len() int { return len(q.heap) }

// Cap returns the configured capacity.
func (q *Queue[T]) Cap() int { return q.cap }

// Push inserts v with the given rank. It returns false (and queues
// nothing) when the queue is full — the caller surfaces backpressure.
func (q *Queue[T]) Push(v T, rank uint64) bool {
	if len(q.heap) >= q.cap {
		return false
	}
	q.seq++
	q.heap = append(q.heap, entry[T]{rank: rank, seq: q.seq, val: v})
	q.siftUp(len(q.heap) - 1)
	return true
}

// Pop removes and returns the entry with the smallest rank, with its
// rank. ok is false on an empty queue.
func (q *Queue[T]) Pop() (v T, rank uint64, ok bool) {
	if len(q.heap) == 0 {
		return v, 0, false
	}
	top := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	var zero entry[T]
	q.heap[last] = zero // drop the payload reference
	q.heap = q.heap[:last]
	if last > 0 {
		q.siftDown(0)
	}
	return top.val, top.rank, true
}

// Peek returns the smallest-rank entry without removing it.
func (q *Queue[T]) Peek() (v T, rank uint64, ok bool) {
	if len(q.heap) == 0 {
		return v, 0, false
	}
	return q.heap[0].val, q.heap[0].rank, true
}

// Drain removes every entry in rank order, calling fn on each, and
// leaves the queue empty. Used by the fault sweep to account frames
// stranded in the class tier when a link goes down under DropStranded.
func (q *Queue[T]) Drain(fn func(T)) int {
	n := len(q.heap)
	for {
		v, _, ok := q.Pop()
		if !ok {
			return n
		}
		fn(v)
	}
}

// less orders the heap: smaller rank first, then smaller (earlier) push
// sequence so equal ranks dequeue FIFO.
func (q *Queue[T]) less(a, b int) bool {
	if q.heap[a].rank != q.heap[b].rank {
		return q.heap[a].rank < q.heap[b].rank
	}
	return q.heap[a].seq < q.heap[b].seq
}

func (q *Queue[T]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *Queue[T]) siftDown(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q.less(l, min) {
			min = l
		}
		if r < n && q.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		q.heap[i], q.heap[min] = q.heap[min], q.heap[i]
		i = min
	}
}
