package pifo

import (
	"fmt"
	"strconv"
	"strings"
)

// Class is one service class of the programmable tier. The zero Weight
// and SLOSlots are normalized at parse/validate time: every class gets
// Weight ≥ 1, and SLOSlots == 0 means "no deadline" (the class rides on
// priority or fair share alone).
type Class struct {
	// Name labels the class in metrics (`lcf_class_*{class=...}`),
	// trace events and flags.
	Name string
	// Priority orders classes for the strict ranker: 0 is the most
	// urgent. Also breaks ties for deadline-less frames under the
	// deadline ranker.
	Priority int
	// Weight is the WFQ share: a weight-4 class drains 4× the frames of
	// a weight-1 class under contention.
	Weight int
	// SLOSlots is the class's latency budget in slots: a frame admitted
	// at slot t carries deadline t+SLOSlots, and delivery after the
	// deadline counts as an SLO violation. 0 disables the deadline.
	SLOSlots int64
}

// ParseClasses parses the `-classes` flag syntax: a comma-separated
// list of `name[:priority[:weight[:slo]]]` entries, e.g.
//
//	rt:0:4:16,quick:1:2:64,bulk:2:1
//
// Omitted priority defaults to the entry's position, omitted weight to
// 1, omitted slo to 0 (no deadline). Names must be unique, non-empty
// and usable as a Prometheus label value ([a-z0-9_]+).
func ParseClasses(spec string) ([]Class, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("pifo: empty class spec")
	}
	var classes []Class
	seen := make(map[string]bool)
	for i, ent := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(ent), ":")
		if len(fields) > 4 {
			return nil, fmt.Errorf("pifo: class %q: want name[:priority[:weight[:slo]]]", ent)
		}
		c := Class{Name: fields[0], Priority: i, Weight: 1}
		if !validClassName(c.Name) {
			return nil, fmt.Errorf("pifo: class name %q must match [a-z0-9_]+", c.Name)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("pifo: duplicate class name %q", c.Name)
		}
		seen[c.Name] = true
		var err error
		if len(fields) > 1 && fields[1] != "" {
			if c.Priority, err = strconv.Atoi(fields[1]); err != nil || c.Priority < 0 {
				return nil, fmt.Errorf("pifo: class %q: bad priority %q", c.Name, fields[1])
			}
		}
		if len(fields) > 2 && fields[2] != "" {
			if c.Weight, err = strconv.Atoi(fields[2]); err != nil || c.Weight < 1 {
				return nil, fmt.Errorf("pifo: class %q: bad weight %q (must be >= 1)", c.Name, fields[2])
			}
		}
		if len(fields) > 3 && fields[3] != "" {
			if c.SLOSlots, err = strconv.ParseInt(fields[3], 10, 64); err != nil || c.SLOSlots < 0 {
				return nil, fmt.Errorf("pifo: class %q: bad slo %q (slots, must be >= 0)", c.Name, fields[3])
			}
		}
		classes = append(classes, c)
	}
	return classes, ValidateClasses(classes)
}

// ValidateClasses checks a class list built in code (rather than parsed
// from a flag): unique valid names and sane weights.
func ValidateClasses(classes []Class) error {
	if len(classes) == 0 {
		return fmt.Errorf("pifo: no classes")
	}
	if len(classes) > 255 {
		return fmt.Errorf("pifo: %d classes exceed the wire format's 255", len(classes))
	}
	seen := make(map[string]bool)
	for _, c := range classes {
		if !validClassName(c.Name) {
			return fmt.Errorf("pifo: class name %q must match [a-z0-9_]+", c.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("pifo: duplicate class name %q", c.Name)
		}
		seen[c.Name] = true
		if c.Weight < 1 {
			return fmt.Errorf("pifo: class %q: weight %d < 1", c.Name, c.Weight)
		}
		if c.Priority < 0 || c.SLOSlots < 0 {
			return fmt.Errorf("pifo: class %q: negative priority or slo", c.Name)
		}
	}
	return nil
}

func validClassName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '_' {
			return false
		}
	}
	return true
}
