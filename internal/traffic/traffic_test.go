package traffic

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// measure runs a generator for `slots` slots and returns the per-input
// arrival rate and the destination histogram.
func measure(g Generator, slots int) (rate float64, destHist []int) {
	destHist = make([]int, g.N())
	pkts := 0
	for t := 0; t < slots; t++ {
		for in := 0; in < g.N(); in++ {
			if d := g.Next(in); d != NoPacket {
				pkts++
				destHist[d]++
			}
		}
		g.Advance()
	}
	rate = float64(pkts) / float64(slots*g.N())
	return rate, destHist
}

func TestBernoulliLoad(t *testing.T) {
	for _, load := range []float64{0.1, 0.5, 0.9} {
		g := NewBernoulli(16, load, NewUniform(16), 1)
		rate, _ := measure(g, 20000)
		if math.Abs(rate-load) > 0.01 {
			t.Fatalf("load %g: measured %g", load, rate)
		}
	}
}

func TestBernoulliZeroAndFullLoad(t *testing.T) {
	g0 := NewBernoulli(4, 0, NewUniform(4), 1)
	rate, _ := measure(g0, 1000)
	if rate != 0 {
		t.Fatalf("load 0 generated packets at rate %g", rate)
	}
	g1 := NewBernoulli(4, 1, NewUniform(4), 1)
	rate, _ = measure(g1, 1000)
	if rate != 1 {
		t.Fatalf("load 1 rate %g, want exactly 1", rate)
	}
}

func TestBernoulliUniformDestinations(t *testing.T) {
	g := NewBernoulli(8, 1, NewUniform(8), 7)
	_, hist := measure(g, 50000)
	total := 0
	for _, c := range hist {
		total += c
	}
	expected := float64(total) / 8
	for d, c := range hist {
		if math.Abs(float64(c)-expected) > 0.03*expected {
			t.Fatalf("destination %d count %d, expected ≈%.0f", d, c, expected)
		}
	}
}

func TestBernoulliDeterministicReplay(t *testing.T) {
	a := NewBernoulli(4, 0.5, NewUniform(4), 42)
	b := NewBernoulli(4, 0.5, NewUniform(4), 42)
	for t2 := 0; t2 < 500; t2++ {
		for in := 0; in < 4; in++ {
			if a.Next(in) != b.Next(in) {
				t.Fatal("same-seed generators diverged")
			}
		}
		a.Advance()
		b.Advance()
	}
}

func TestBernoulliInputIndependence(t *testing.T) {
	// Different inputs must not generate identical streams.
	g := NewBernoulli(2, 0.5, NewUniform(2), 9)
	same := 0
	const slots = 2000
	for t2 := 0; t2 < slots; t2++ {
		if g.Next(0) == g.Next(1) {
			same++
		}
		g.Advance()
	}
	// With load 0.5 and 2 destinations, P(equal) = P(both idle) + P(both
	// same dst) = 0.25 + 0.25*0.5 = 0.375-ish; identical streams would give
	// 1.0. Flag only the pathological case.
	if float64(same)/slots > 0.8 {
		t.Fatalf("inputs 0 and 1 agree %d/%d slots; streams correlated", same, slots)
	}
}

func TestBernoulliValidation(t *testing.T) {
	for _, tc := range []struct {
		n    int
		load float64
	}{{0, 0.5}, {-1, 0.5}, {4, -0.1}, {4, 1.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewBernoulli(%d, %g) did not panic", tc.n, tc.load)
				}
			}()
			NewBernoulli(tc.n, tc.load, NewUniform(4), 1)
		}()
	}
}

func TestHotspotFraction(t *testing.T) {
	g := NewBernoulli(8, 1, NewHotspot(8, 3, 0.5), 3)
	_, hist := measure(g, 50000)
	total := 0
	for _, c := range hist {
		total += c
	}
	hotFrac := float64(hist[3]) / float64(total)
	// The non-hot branch excludes the hot port, so hot receives exactly
	// frac of the traffic and each other port (1-frac)/(n-1).
	if math.Abs(hotFrac-0.5) > 0.02 {
		t.Fatalf("hot fraction %g, want ≈0.5", hotFrac)
	}
	for d, c := range hist {
		if d == 3 {
			continue
		}
		got := float64(c) / float64(total)
		if math.Abs(got-0.5/7) > 0.01 {
			t.Fatalf("cold port %d fraction %g, want ≈%g", d, got, 0.5/7)
		}
	}
}

func TestHotspotValidation(t *testing.T) {
	for _, tc := range []struct {
		hot  int
		frac float64
	}{{-1, 0.5}, {8, 0.5}, {0, -0.1}, {0, 1.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHotspot(8, %d, %g) did not panic", tc.hot, tc.frac)
				}
			}()
			NewHotspot(8, tc.hot, tc.frac)
		}()
	}
}

func TestHotspotSinglePort(t *testing.T) {
	h := NewHotspot(1, 0, 0.0)
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		if d := h.Pick(0, r); d != 0 {
			t.Fatalf("n=1 hotspot picked %d", d)
		}
	}
}

func TestDiagonalSplit(t *testing.T) {
	const n = 8
	d := NewDiagonal(n)
	r := rng.New(5)
	countSelf, countNext := 0, 0
	const draws = 60000
	for i := 0; i < draws; i++ {
		in := i % n
		switch d.Pick(in, r) {
		case in:
			countSelf++
		case (in + 1) % n:
			countNext++
		default:
			t.Fatal("diagonal picked off-diagonal destination")
		}
	}
	if math.Abs(float64(countSelf)/draws-2.0/3.0) > 0.01 {
		t.Fatalf("self fraction %g, want 2/3", float64(countSelf)/draws)
	}
	if math.Abs(float64(countNext)/draws-1.0/3.0) > 0.01 {
		t.Fatalf("next fraction %g, want 1/3", float64(countNext)/draws)
	}
}

func TestLogDiagonalGeometric(t *testing.T) {
	const n = 8
	d := NewLogDiagonal(n)
	r := rng.New(6)
	hist := make([]int, n)
	const draws = 80000
	for i := 0; i < draws; i++ {
		off := (d.Pick(0, r) - 0 + n) % n
		hist[off]++
	}
	// Offset k has probability 2^-(k+1), remainder folded into the last.
	for k := 0; k < n-1; k++ {
		want := math.Pow(0.5, float64(k+1))
		got := float64(hist[k]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("offset %d frequency %g, want %g", k, got, want)
		}
	}
}

func TestUnbalancedDistribution(t *testing.T) {
	const n = 8
	r := rng.New(31)
	for _, w := range []float64{0, 0.5, 1} {
		u := NewUnbalanced(n, w)
		self := 0
		const draws = 40000
		for k := 0; k < draws; k++ {
			d := u.Pick(3, r)
			if d < 0 || d >= n {
				t.Fatalf("w=%g: destination %d", w, d)
			}
			if d == 3 {
				self++
			}
		}
		want := w + (1-w)/n
		got := float64(self) / draws
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("w=%g: self fraction %g, want %g", w, got, want)
		}
	}
}

func TestUnbalancedValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("w=2 accepted")
		}
	}()
	NewUnbalanced(4, 2)
}

func TestBurstyLoad(t *testing.T) {
	for _, load := range []float64{0.3, 0.7} {
		g := NewBursty(8, load, 16, NewUniform(8), 11)
		rate, _ := measure(g, 60000)
		if math.Abs(rate-load) > 0.03 {
			t.Fatalf("bursty load %g: measured %g", load, rate)
		}
	}
}

func TestBurstyBurstStructure(t *testing.T) {
	// During a burst all packets go to the same destination; measure mean
	// burst length of back-to-back same-destination runs at load 1 where
	// the process emits continuously.
	g := NewBursty(1, 1, 8, NewUniform(16), 13)
	prev := NoPacket
	runs, runLen, totalLen := 0, 0, 0
	const slots = 50000
	for t2 := 0; t2 < slots; t2++ {
		d := g.Next(0)
		if d == NoPacket {
			t.Fatal("load-1 bursty generator idled")
		}
		if d != prev && prev != NoPacket {
			runs++
			totalLen += runLen
			runLen = 0
		}
		runLen++
		prev = d
		g.Advance()
	}
	mean := float64(totalLen) / float64(runs)
	// Runs can merge when consecutive bursts pick the same destination
	// (prob 1/16), pushing the observed mean slightly above 8.
	if mean < 7 || mean > 10.5 {
		t.Fatalf("mean burst length %g, want ≈8·16/15", mean)
	}
}

func TestBurstyZeroLoad(t *testing.T) {
	g := NewBursty(2, 0, 4, NewUniform(2), 1)
	rate, _ := measure(g, 2000)
	if rate != 0 {
		t.Fatalf("zero-load bursty rate %g", rate)
	}
}

func TestBurstyValidation(t *testing.T) {
	for _, tc := range []struct {
		load, burst float64
	}{{-0.1, 4}, {1.1, 4}, {0.5, 0.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewBursty(load=%g, burst=%g) did not panic", tc.load, tc.burst)
				}
			}()
			NewBursty(2, tc.load, tc.burst, NewUniform(2), 1)
		}()
	}
}

func TestTraceReplay(t *testing.T) {
	tr := NewTrace(2, [][]int{
		{1, NoPacket},
		{NoPacket, 0},
	})
	if d := tr.Next(0); d != 1 {
		t.Fatalf("slot 0 input 0 = %d", d)
	}
	if d := tr.Next(1); d != NoPacket {
		t.Fatalf("slot 0 input 1 = %d", d)
	}
	tr.Advance()
	if d := tr.Next(1); d != 0 {
		t.Fatalf("slot 1 input 1 = %d", d)
	}
	tr.Advance()
	// Past the trace: silence.
	for in := 0; in < 2; in++ {
		if d := tr.Next(in); d != NoPacket {
			t.Fatalf("past-end Next = %d", d)
		}
	}
}

func TestTraceEmpiricalLoad(t *testing.T) {
	tr := NewTrace(2, [][]int{
		{1, NoPacket},
		{0, 0},
	})
	if got := tr.Load(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("trace Load = %g, want 0.75", got)
	}
	if got := NewTrace(2, nil).Load(); got != 0 {
		t.Fatalf("empty trace Load = %g", got)
	}
}

func TestTraceValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("ragged trace did not panic")
			}
		}()
		NewTrace(2, [][]int{{0}})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range trace destination did not panic")
			}
		}()
		NewTrace(2, [][]int{{0, 5}})
	}()
}

func BenchmarkBernoulli16(b *testing.B) {
	g := NewBernoulli(16, 0.9, NewUniform(16), 1)
	for i := 0; i < b.N; i++ {
		for in := 0; in < 16; in++ {
			_ = g.Next(in)
		}
		g.Advance()
	}
}

func BenchmarkBursty16(b *testing.B) {
	g := NewBursty(16, 0.9, 16, NewUniform(16), 1)
	for i := 0; i < b.N; i++ {
		for in := 0; in < 16; in++ {
			_ = g.Next(in)
		}
		g.Advance()
	}
}
