// Package traffic implements the packet generators (the PG boxes of the
// paper's Figure 11 simulation model) plus the non-uniform and bursty
// extensions used by the additional experiments.
//
// A Generator is asked once per input port per slot whether a new packet is
// generated and, if so, for which destination. The paper's Figure 12 uses
// Bernoulli i.i.d. arrivals with uniformly distributed destinations ("Load
// is the probability that a host generates a packet in a given time slot.
// The destinations of the packets are uniformly distributed."); the other
// patterns here are the standard stress cases from the input-queued switch
// literature (hotspot, diagonal, bursty on/off) used by the extension
// experiments in EXPERIMENTS.md.
package traffic

import (
	"fmt"

	"repro/internal/rng"
)

// NoPacket is returned as the destination when a port generates nothing in
// a slot.
const NoPacket = -1

// Generator produces the arrival process for all n inputs of one switch.
type Generator interface {
	// Next returns the destination port for a packet generated at input
	// port `in` during the current slot, or NoPacket. It is called exactly
	// once per input per slot, in increasing input order.
	Next(in int) int
	// Advance moves the generator to the next slot. It is called once per
	// slot after all Next calls.
	Advance()
	// N returns the port count.
	N() int
	// Load returns the configured offered load per input in [0,1].
	Load() float64
}

// Bernoulli is the paper's arrival process: each slot, each input
// independently generates a packet with probability load; the destination
// is drawn from a destination distribution.
type Bernoulli struct {
	n    int
	load float64
	dst  DestPicker
	rngs []*rng.PCG32 // one stream per input so ports are independent
}

// DestPicker selects a destination for a packet arriving at input `in`.
type DestPicker interface {
	Pick(in int, r *rng.PCG32) int
}

// NewBernoulli returns a Bernoulli generator for n ports at the given load
// with destination distribution dst. Each input gets an independent RNG
// stream derived from seed.
func NewBernoulli(n int, load float64, dst DestPicker, seed uint64) *Bernoulli {
	if n <= 0 {
		panic(fmt.Sprintf("traffic: non-positive port count %d", n))
	}
	if load < 0 || load > 1 {
		panic(fmt.Sprintf("traffic: load %g out of [0,1]", load))
	}
	g := &Bernoulli{n: n, load: load, dst: dst, rngs: make([]*rng.PCG32, n)}
	sm := rng.NewSplitMix64(seed)
	for i := range g.rngs {
		g.rngs[i] = rng.NewPCG32(sm.Next(), uint64(i)*2+1)
	}
	return g
}

// Next implements Generator.
func (g *Bernoulli) Next(in int) int {
	r := g.rngs[in]
	if !r.Bool(g.load) {
		return NoPacket
	}
	return g.dst.Pick(in, r)
}

// Advance implements Generator (Bernoulli arrivals are memoryless).
func (g *Bernoulli) Advance() {}

// N implements Generator.
func (g *Bernoulli) N() int { return g.n }

// Load implements Generator.
func (g *Bernoulli) Load() float64 { return g.load }

// Uniform destinations: each packet targets a uniformly random output
// (including the input's own index, matching the paper's switch model where
// n virtual output queues exist per input).
type Uniform struct{ n int }

// NewUniform returns a uniform destination distribution over n outputs.
func NewUniform(n int) Uniform { return Uniform{n: n} }

// Pick implements DestPicker.
func (u Uniform) Pick(_ int, r *rng.PCG32) int { return r.Intn(u.n) }

// Hotspot sends fraction `frac` of each input's packets to a single hot
// output and spreads the remainder uniformly over the others. It models the
// server/uplink concentration pattern.
type Hotspot struct {
	n    int
	hot  int
	frac float64
}

// NewHotspot returns a hotspot distribution: probability frac to the hot
// port, uniform over the remaining n-1 otherwise.
func NewHotspot(n, hot int, frac float64) Hotspot {
	if hot < 0 || hot >= n {
		panic(fmt.Sprintf("traffic: hot port %d out of range", hot))
	}
	if frac < 0 || frac > 1 {
		panic(fmt.Sprintf("traffic: hotspot fraction %g out of [0,1]", frac))
	}
	return Hotspot{n: n, hot: hot, frac: frac}
}

// Pick implements DestPicker.
func (h Hotspot) Pick(_ int, r *rng.PCG32) int {
	if h.n == 1 || r.Bool(h.frac) {
		return h.hot
	}
	d := r.Intn(h.n - 1)
	if d >= h.hot {
		d++
	}
	return d
}

// Diagonal concentrates traffic on two diagonals: input i sends 2/3 of its
// packets to output i and 1/3 to output (i+1) mod n. This is the classic
// hard case for round-robin schedulers (McKeown's thesis, the paper's
// reference [9]).
type Diagonal struct{ n int }

// NewDiagonal returns the two-diagonal distribution.
func NewDiagonal(n int) Diagonal { return Diagonal{n: n} }

// Pick implements DestPicker.
func (d Diagonal) Pick(in int, r *rng.PCG32) int {
	if r.Bool(2.0 / 3.0) {
		return in % d.n
	}
	return (in + 1) % d.n
}

// LogDiagonal spreads load geometrically: input i sends 1/2 to output i,
// 1/4 to i+1, 1/8 to i+2, ... wrapping, with the remainder folded into the
// last term so the distribution sums to one.
type LogDiagonal struct{ n int }

// NewLogDiagonal returns the log-diagonal distribution.
func NewLogDiagonal(n int) LogDiagonal { return LogDiagonal{n: n} }

// Pick implements DestPicker.
func (d LogDiagonal) Pick(in int, r *rng.PCG32) int {
	off := 0
	for off < d.n-1 && !r.Bool(0.5) {
		off++
	}
	return (in + off) % d.n
}

// Unbalanced is the standard unbalanced-traffic benchmark (Rojas-Cessa et
// al.): with unbalance w ∈ [0,1], input i sends fraction w + (1−w)/n of
// its packets to output i and (1−w)/n to every other output. w = 0 is
// uniform; w = 1 is a pure permutation. Sweeping w exposes schedulers
// whose throughput dips in the middle of the range.
type Unbalanced struct {
	n int
	w float64
}

// NewUnbalanced returns the unbalanced distribution with the given factor.
func NewUnbalanced(n int, w float64) Unbalanced {
	if w < 0 || w > 1 {
		panic(fmt.Sprintf("traffic: unbalance %g out of [0,1]", w))
	}
	return Unbalanced{n: n, w: w}
}

// Pick implements DestPicker.
func (u Unbalanced) Pick(in int, r *rng.PCG32) int {
	if r.Bool(u.w) {
		return in % u.n
	}
	return r.Intn(u.n)
}

// Bursty is a two-state (on/off) Markov-modulated process: during an "on"
// burst an input emits back-to-back packets for a single destination;
// bursts and idle gaps have geometric lengths. The mean burst length and
// offered load determine the state-transition probabilities. This is the
// standard burstiness model for input-queued switch evaluation.
type Bursty struct {
	n         int
	load      float64
	meanBurst float64
	dst       DestPicker
	rngs      []*rng.PCG32
	state     []burstState
}

type burstState struct {
	remaining int // packets left in the current burst; 0 = idle
	dst       int
}

// NewBursty returns a bursty generator with the given offered load and mean
// burst length (in packets). meanBurst must be ≥ 1.
func NewBursty(n int, load, meanBurst float64, dst DestPicker, seed uint64) *Bursty {
	if load < 0 || load > 1 {
		panic(fmt.Sprintf("traffic: load %g out of [0,1]", load))
	}
	if meanBurst < 1 {
		panic(fmt.Sprintf("traffic: mean burst %g < 1", meanBurst))
	}
	g := &Bursty{
		n: n, load: load, meanBurst: meanBurst, dst: dst,
		rngs:  make([]*rng.PCG32, n),
		state: make([]burstState, n),
	}
	sm := rng.NewSplitMix64(seed)
	for i := range g.rngs {
		g.rngs[i] = rng.NewPCG32(sm.Next(), uint64(i)*2+1)
	}
	return g
}

// Next implements Generator.
func (g *Bursty) Next(in int) int {
	st := &g.state[in]
	r := g.rngs[in]
	if st.remaining == 0 {
		// Between bursts. At load 1 the off state is skipped entirely;
		// otherwise a burst starts this slot with probability
		// load / (load + B·(1−load)), which makes the long-run packet rate
		// equal the configured load for geometric bursts of mean B.
		if g.load < 1 {
			if g.load <= 0 {
				return NoPacket
			}
			pStart := g.load / (g.load + g.meanBurst*(1-g.load))
			if !r.Bool(pStart) {
				return NoPacket
			}
		}
		st.remaining = r.Geometric(1 / g.meanBurst)
		st.dst = g.dst.Pick(in, r)
	}
	st.remaining--
	return st.dst
}

// Advance implements Generator.
func (g *Bursty) Advance() {}

// N implements Generator.
func (g *Bursty) N() int { return g.n }

// Load implements Generator.
func (g *Bursty) Load() float64 { return g.load }

// Trace replays a fixed arrival schedule; arrivals[t][i] is the destination
// generated at input i in slot t, or NoPacket. Past the end of the trace no
// packets are generated. Used by deterministic tests and the worked
// examples from the paper's figures.
type Trace struct {
	n        int
	arrivals [][]int
	t        int
}

// NewTrace returns a generator replaying arrivals; every row must have
// length n.
func NewTrace(n int, arrivals [][]int) *Trace {
	for t, row := range arrivals {
		if len(row) != n {
			panic(fmt.Sprintf("traffic: trace row %d has %d entries, want %d", t, len(row), n))
		}
		for i, d := range row {
			if d != NoPacket && (d < 0 || d >= n) {
				panic(fmt.Sprintf("traffic: trace[%d][%d] = %d out of range", t, i, d))
			}
		}
	}
	return &Trace{n: n, arrivals: arrivals}
}

// Next implements Generator.
func (g *Trace) Next(in int) int {
	if g.t >= len(g.arrivals) {
		return NoPacket
	}
	return g.arrivals[g.t][in]
}

// Advance implements Generator.
func (g *Trace) Advance() { g.t++ }

// N implements Generator.
func (g *Trace) N() int { return g.n }

// Load implements Generator. For a trace this is the empirical load.
func (g *Trace) Load() float64 {
	if len(g.arrivals) == 0 || g.n == 0 {
		return 0
	}
	pkts := 0
	for _, row := range g.arrivals {
		for _, d := range row {
			if d != NoPacket {
				pkts++
			}
		}
	}
	return float64(pkts) / float64(len(g.arrivals)*g.n)
}
