package traffic

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Trace file format: a line-oriented text format for arrival traces so
// experiments can be driven by recorded or hand-written workloads
// (cmd/lcftrace -arrivals). Each non-empty, non-comment line is
//
//	<slot> <input> <dst>
//
// with 0-based indices; '#' starts a comment. Slots may appear in any
// order; at most one packet per (slot, input) — the switch model admits
// one arrival per input per slot (Section 2's one-packet-per-slot links).

// ParseTrace reads the trace format for an n-port switch and returns a
// replaying Generator.
func ParseTrace(r io.Reader, n int) (*Trace, error) {
	if n <= 0 {
		return nil, fmt.Errorf("traffic: non-positive port count %d", n)
	}
	type entry struct{ slot, in, dst int }
	var entries []entry
	maxSlot := -1

	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("traffic: line %d: want 3 fields, got %d", lineNo, len(fields))
		}
		var e entry
		if _, err := fmt.Sscanf(fields[0]+" "+fields[1]+" "+fields[2], "%d %d %d", &e.slot, &e.in, &e.dst); err != nil {
			return nil, fmt.Errorf("traffic: line %d: %v", lineNo, err)
		}
		if e.slot < 0 {
			return nil, fmt.Errorf("traffic: line %d: negative slot %d", lineNo, e.slot)
		}
		if e.in < 0 || e.in >= n {
			return nil, fmt.Errorf("traffic: line %d: input %d out of [0,%d)", lineNo, e.in, n)
		}
		if e.dst < 0 || e.dst >= n {
			return nil, fmt.Errorf("traffic: line %d: destination %d out of [0,%d)", lineNo, e.dst, n)
		}
		entries = append(entries, e)
		if e.slot > maxSlot {
			maxSlot = e.slot
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traffic: reading trace: %w", err)
	}

	arrivals := make([][]int, maxSlot+1)
	for t := range arrivals {
		row := make([]int, n)
		for i := range row {
			row[i] = NoPacket
		}
		arrivals[t] = row
	}
	for _, e := range entries {
		if arrivals[e.slot][e.in] != NoPacket {
			return nil, fmt.Errorf("traffic: duplicate arrival at slot %d input %d", e.slot, e.in)
		}
		arrivals[e.slot][e.in] = e.dst
	}
	return NewTrace(n, arrivals), nil
}

// WriteTrace serializes a dense arrival table (the inverse of ParseTrace)
// in the trace file format, with a header comment.
func WriteTrace(w io.Writer, n int, arrivals [][]int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# arrival trace: %d ports, %d slots\n# slot input dst\n", n, len(arrivals))
	for t, row := range arrivals {
		if len(row) != n {
			return fmt.Errorf("traffic: row %d has %d entries, want %d", t, len(row), n)
		}
		for in, dst := range row {
			if dst == NoPacket {
				continue
			}
			fmt.Fprintf(bw, "%d %d %d\n", t, in, dst)
		}
	}
	return bw.Flush()
}

// Record runs a Generator for the given number of slots and captures its
// arrivals as a dense table — useful for turning a stochastic workload
// into a replayable trace.
func Record(g Generator, slots int) [][]int {
	out := make([][]int, slots)
	for t := 0; t < slots; t++ {
		row := make([]int, g.N())
		for in := range row {
			row[in] = g.Next(in)
		}
		g.Advance()
		out[t] = row
	}
	return out
}
