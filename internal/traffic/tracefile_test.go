package traffic

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseTraceBasic(t *testing.T) {
	input := `
# demo trace
0 0 1
0 1 0   # same slot, second input
2 1 1
`
	tr, err := ParseTrace(strings.NewReader(input), 2)
	if err != nil {
		t.Fatal(err)
	}
	if d := tr.Next(0); d != 1 {
		t.Fatalf("slot 0 input 0 = %d", d)
	}
	if d := tr.Next(1); d != 0 {
		t.Fatalf("slot 0 input 1 = %d", d)
	}
	tr.Advance()
	if d := tr.Next(0); d != NoPacket {
		t.Fatalf("slot 1 input 0 = %d", d)
	}
	if d := tr.Next(1); d != NoPacket {
		t.Fatalf("slot 1 input 1 = %d", d)
	}
	tr.Advance()
	if d := tr.Next(1); d != 1 {
		t.Fatalf("slot 2 input 1 = %d", d)
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []struct{ name, input string }{
		{"fields", "0 0\n"},
		{"nonnumeric", "a b c\n"},
		{"negative slot", "-1 0 0\n"},
		{"input range", "0 5 0\n"},
		{"dst range", "0 0 5\n"},
		{"duplicate", "0 0 1\n0 0 0\n"},
	}
	for _, c := range cases {
		if _, err := ParseTrace(strings.NewReader(c.input), 2); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := ParseTrace(strings.NewReader(""), 0); err == nil {
		t.Error("zero ports accepted")
	}
	// Empty trace is fine: a generator that never produces.
	tr, err := ParseTrace(strings.NewReader("# nothing\n"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Next(0) != NoPacket {
		t.Fatal("empty trace produced a packet")
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	arrivals := [][]int{
		{1, NoPacket, 0},
		{NoPacket, NoPacket, NoPacket},
		{2, 2, 2},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, 3, arrivals); err != nil {
		t.Fatal(err)
	}
	tr, err := ParseTrace(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	for slot, row := range arrivals {
		for in, want := range row {
			if got := tr.Next(in); got != want {
				t.Fatalf("slot %d input %d: %d, want %d", slot, in, got, want)
			}
		}
		tr.Advance()
	}
}

func TestWriteTraceRagged(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, 2, [][]int{{0}}); err == nil {
		t.Fatal("ragged table accepted")
	}
}

func TestRecordReplaysBernoulli(t *testing.T) {
	// Record a stochastic generator, replay the trace, and check the two
	// produce identical arrivals (the point of Record).
	g1 := NewBernoulli(4, 0.6, NewUniform(4), 77)
	table := Record(g1, 200)
	tr := NewTrace(4, table)
	g2 := NewBernoulli(4, 0.6, NewUniform(4), 77)
	for slot := 0; slot < 200; slot++ {
		for in := 0; in < 4; in++ {
			if tr.Next(in) != g2.Next(in) {
				t.Fatalf("slot %d input %d: replay diverged", slot, in)
			}
		}
		tr.Advance()
		g2.Advance()
	}
}
