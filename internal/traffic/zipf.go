package traffic

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// Zipf samples flow ranks from a Zipf popularity distribution:
// P(rank r) ∝ 1/(r+1)^s over ranks 0..k-1, rank 0 most popular. It is
// the standard skew model for flow popularity in a switch's offered
// traffic — a handful of elephant flows carry most frames while a long
// tail of mice stays nearly idle — and drives the flow-mode load of
// cmd/lcfload and the E31 steering study (EXPERIMENTS.md).
//
// s = 0 degenerates to uniform popularity; s = 1 is the classic Zipf
// law. The sampler precomputes the cumulative weight table once
// (O(k) memory, ~8 MB at one million flows) and draws by binary search
// (O(log k) per sample), deterministic per seed like every generator in
// this package.
type Zipf struct {
	cum []float64 // cum[r] = sum of weights of ranks 0..r
	r   *rng.PCG32
}

// NewZipf returns a Zipf sampler over k ranks with skew exponent s ≥ 0,
// seeded deterministically.
func NewZipf(k int, s float64, seed uint64) *Zipf {
	if k <= 0 {
		panic(fmt.Sprintf("traffic: non-positive Zipf rank count %d", k))
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		panic(fmt.Sprintf("traffic: Zipf skew %g must be finite and >= 0", s))
	}
	z := &Zipf{cum: make([]float64, k), r: rng.New(seed)}
	total := 0.0
	for rank := 0; rank < k; rank++ {
		total += math.Pow(float64(rank+1), -s)
		z.cum[rank] = total
	}
	return z
}

// K returns the rank count.
func (z *Zipf) K() int { return len(z.cum) }

// Next draws a rank in [0, K()).
func (z *Zipf) Next() int {
	u := z.r.Float64() * z.cum[len(z.cum)-1]
	return sort.SearchFloat64s(z.cum, u)
}
