package traffic

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseTrace: arbitrary text must either parse into a well-formed
// trace or fail with an error — never panic, never produce out-of-range
// arrivals.
func FuzzParseTrace(f *testing.F) {
	f.Add("0 0 1\n1 1 0\n", 2)
	f.Add("# comment only\n", 4)
	f.Add("0 0 0", 1)
	f.Add("-1 0 0\n", 2)
	f.Add("x y z\n", 2)
	f.Fuzz(func(t *testing.T, input string, nRaw int) {
		n := nRaw%8 + 1
		if n < 1 {
			n = 1
		}
		tr, err := ParseTrace(strings.NewReader(input), n)
		if err != nil {
			return
		}
		// A parsed trace must replay within range and round-trip through
		// the writer.
		table := Record(tr, 64)
		for slot, row := range table {
			for in, dst := range row {
				if dst != NoPacket && (dst < 0 || dst >= n) {
					t.Fatalf("slot %d input %d: out-of-range destination %d", slot, in, dst)
				}
			}
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, n, table); err != nil {
			t.Fatalf("WriteTrace on parsed data: %v", err)
		}
		if _, err := ParseTrace(&buf, n); err != nil {
			t.Fatalf("re-parse of written trace: %v", err)
		}
	})
}
