package traffic

import (
	"testing"
)

func TestZipfBoundsAndDeterminism(t *testing.T) {
	const k, samples = 1000, 20000
	a, b := NewZipf(k, 1.0, 42), NewZipf(k, 1.0, 42)
	if a.K() != k {
		t.Fatalf("K() = %d, want %d", a.K(), k)
	}
	for i := 0; i < samples; i++ {
		ra, rb := a.Next(), b.Next()
		if ra != rb {
			t.Fatalf("sample %d diverged across equal seeds: %d != %d", i, ra, rb)
		}
		if ra < 0 || ra >= k {
			t.Fatalf("sample %d out of range: %d", i, ra)
		}
	}
}

// TestZipfSkew pins the shape: under s=1 the head ranks carry far more
// probability than a uniform split, and s=0 degenerates to uniform.
func TestZipfSkew(t *testing.T) {
	const k, samples = 1000, 200000
	headShare := func(s float64) float64 {
		z := NewZipf(k, s, 7)
		head := 0
		for i := 0; i < samples; i++ {
			if z.Next() < k/100 { // top 1% of ranks
				head++
			}
		}
		return float64(head) / samples
	}
	if got := headShare(0); got < 0.005 || got > 0.02 {
		t.Errorf("uniform head share = %.4f, want ≈ 0.01", got)
	}
	// At s=1 over 1000 ranks the top 1% carries sum(1/r, r≤10)/sum(1/r,
	// r≤1000) ≈ 0.39 of the mass.
	if got := headShare(1); got < 0.3 || got > 0.5 {
		t.Errorf("zipf(1) head share = %.4f, want ≈ 0.39", got)
	}
	// Higher skew concentrates harder.
	if h1, h2 := headShare(1), headShare(1.5); h2 <= h1 {
		t.Errorf("skew 1.5 head share %.4f not above skew 1's %.4f", h2, h1)
	}
}

func TestZipfPanicsOnBadArgs(t *testing.T) {
	for _, tc := range []struct {
		k int
		s float64
	}{{0, 1}, {-1, 1}, {10, -0.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %g) did not panic", tc.k, tc.s)
				}
			}()
			NewZipf(tc.k, tc.s, 1)
		}()
	}
}
