// Package datapath maps the datapath names exposed on the CLI surface
// (`lcfd -datapath`, `lcfsim -datapath`) to constructors, the same
// name→builder role internal/sched/registry plays for schedulers:
//
//   - "voq":  the VOQ core with one central matching per slot
//     (internal/switchcore), the paper's organization.
//   - "cicq": the crosspoint-buffered variant with independent
//     per-input dispatch and per-output pull arbiters (internal/cicq).
//
// The name list is pinned by a golden test exactly like the scheduler
// registry's, because these names are public API: CLI flags, engine
// configs and EXPERIMENTS.md refer to them.
package datapath

import (
	"fmt"
	"sort"

	"repro/internal/cicq"
	"repro/internal/switchcore"
)

// Datapath names.
const (
	VOQ  = "voq"
	CICQ = "cicq"
)

// DefaultXPCap is the per-crosspoint buffer bound used when a config
// does not set one. Crosspoint buffers are small by design — a handful
// of frames per crosspoint is what the CICQ literature assumes — and 8
// keeps the n² rings cheap while decoupling the arbiter banks.
const DefaultXPCap = 8

// Config carries the construction parameters common to both datapaths.
type Config struct {
	// N is the port count.
	N int
	// VOQCap bounds each of the n² VOQs (0 = unbounded).
	VOQCap int
	// XPCap bounds each crosspoint buffer (CICQ only; 0 means
	// DefaultXPCap).
	XPCap int
	// Prealloc sizes every VOQ ring at full capacity up front for an
	// allocation-free admit path (requires a bounded VOQCap).
	Prealloc bool
}

// Known reports whether name is a registered datapath ("" counts as the
// default, "voq").
func Known(name string) bool {
	return name == "" || name == VOQ || name == CICQ
}

// New builds the named datapath. The error lists the known names on a
// miss so CLI typos are self-explanatory.
func New[T any](name string, cfg Config) (switchcore.Datapath[T], error) {
	switch name {
	case "", VOQ:
		return switchcore.NewPrealloc[T](cfg.N, cfg.VOQCap, cfg.Prealloc), nil
	case CICQ:
		xp := cfg.XPCap
		if xp <= 0 {
			xp = DefaultXPCap
		}
		return cicq.NewPrealloc[T](cfg.N, cfg.VOQCap, xp, cfg.Prealloc), nil
	}
	return nil, fmt.Errorf("datapath: unknown datapath %q (known: %v)", name, Names())
}

// Names returns the registered datapath names, sorted.
func Names() []string {
	names := []string{CICQ, VOQ}
	sort.Strings(names)
	return names
}
