package datapath

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the Names() golden file")

// TestNamesGolden locks the public datapath-name list, exactly like the
// scheduler registry's golden test: adding, renaming or removing a
// datapath must come with a deliberate update of testdata/names.golden
// (go test ./internal/datapath -update), because these names are public
// API — the -datapath flags of lcfd and lcfsim, engine configs and
// EXPERIMENTS.md all refer to them.
func TestNamesGolden(t *testing.T) {
	goldenPath := filepath.Join("testdata", "names.golden")
	got := strings.Join(Names(), "\n") + "\n"
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("datapath name list drifted from %s:\n got: %v\nwant: %v\n"+
			"if the change is intentional, regenerate with: go test ./internal/datapath -update",
			goldenPath, Names(), strings.Fields(string(want)))
	}
}

// TestNewRejectsUnknown pins the self-explanatory error contract.
func TestNewRejectsUnknown(t *testing.T) {
	if _, err := New[int]("xbar", Config{N: 4, VOQCap: 8}); err == nil {
		t.Fatal("New accepted an unknown datapath name")
	} else if !strings.Contains(err.Error(), "cicq") || !strings.Contains(err.Error(), "voq") {
		t.Fatalf("error does not enumerate known names: %v", err)
	}
	for _, name := range append(Names(), "") {
		dp, err := New[int](name, Config{N: 4, VOQCap: 8})
		if err != nil || dp == nil {
			t.Fatalf("New(%q) = %v, %v", name, dp, err)
		}
		if !Known(name) {
			t.Fatalf("Known(%q) = false for a constructible datapath", name)
		}
	}
}
