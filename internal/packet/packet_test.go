package packet

import (
	"strings"
	"testing"
)

func TestQueueingDelay(t *testing.T) {
	p := &Packet{Generated: 10, Departed: 17}
	if d := p.QueueingDelay(); d != 7 {
		t.Fatalf("QueueingDelay = %d, want 7", d)
	}
}

func TestQueueingDelayPanicsUndeparted(t *testing.T) {
	p := &Packet{Generated: 10, Departed: Never}
	defer func() {
		if recover() == nil {
			t.Fatal("QueueingDelay on undeparted packet did not panic")
		}
	}()
	p.QueueingDelay()
}

func TestString(t *testing.T) {
	p := &Packet{ID: 3, Src: 1, Dst: 2, Generated: 5, Departed: 9}
	s := p.String()
	for _, want := range []string{"pkt#3", "1→2", "gen=5", "dep=9"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestPoolUniqueIDs(t *testing.T) {
	pl := NewPool()
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		p := pl.Get(0, 1, Slot(i))
		if seen[p.ID] {
			t.Fatalf("duplicate ID %d", p.ID)
		}
		seen[p.ID] = true
		if i%2 == 0 {
			pl.Put(p)
		}
	}
	if pl.Issued() != 100 {
		t.Fatalf("Issued = %d, want 100", pl.Issued())
	}
}

func TestPoolReusesAndResets(t *testing.T) {
	pl := NewPool()
	p := pl.Get(1, 2, 3)
	p.Departed = 9
	p.EnqueuedVOQ = 5
	id := p.ID
	pl.Put(p)
	q := pl.Get(4, 5, 6)
	if q != p {
		t.Fatal("pool did not reuse freed packet")
	}
	if q.ID == id {
		t.Fatal("reused packet kept old ID")
	}
	if q.Src != 4 || q.Dst != 5 || q.Generated != 6 {
		t.Fatalf("reused packet fields not reset: %+v", q)
	}
	if q.Departed != Never || q.EnqueuedVOQ != Never {
		t.Fatalf("reused packet timestamps not reset: %+v", q)
	}
}

func TestPoolLiveAccounting(t *testing.T) {
	pl := NewPool()
	a := pl.Get(0, 0, 0)
	b := pl.Get(0, 0, 0)
	if pl.Live() != 2 {
		t.Fatalf("Live = %d, want 2", pl.Live())
	}
	pl.Put(a)
	if pl.Live() != 1 {
		t.Fatalf("Live = %d, want 1", pl.Live())
	}
	pl.Put(b)
	if pl.Live() != 0 {
		t.Fatalf("Live = %d, want 0", pl.Live())
	}
	pl.Put(nil) // must be a no-op
	if pl.Live() != 0 {
		t.Fatalf("Put(nil) changed Live to %d", pl.Live())
	}
}

func BenchmarkPoolGetPut(b *testing.B) {
	pl := NewPool()
	for i := 0; i < b.N; i++ {
		p := pl.Get(0, 1, Slot(i))
		pl.Put(p)
	}
}
