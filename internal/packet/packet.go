// Package packet defines the fixed-size packet (cell) model and slot time
// base shared by the simulator.
//
// The paper's switch forwards fixed-size packets in discrete, aligned time
// slots (Section 2): all initiators start and stop transmission
// simultaneously, so a packet is fully described by its endpoints and the
// slots at which it passed each measurement point. Payload contents are
// irrelevant to scheduling and are not modelled.
package packet

import "fmt"

// Slot is a discrete time step of the switch. Slot 0 is the first simulated
// slot; Never marks "not yet happened".
type Slot int64

// Never is the sentinel for timestamps that have not been assigned.
const Never Slot = -1

// Packet is one fixed-size cell travelling through the switch.
type Packet struct {
	// ID is unique per simulation run, assigned in generation order.
	ID uint64
	// Src is the input port (initiator) the packet arrives at.
	Src int
	// Dst is the output port (target) the packet is destined for.
	Dst int
	// Generated is the slot the packet generator produced the packet
	// (entry into the PQ of the paper's Figure 11 model).
	Generated Slot
	// EnqueuedVOQ is the slot the packet moved from the PQ into its
	// virtual output queue, or Never while still in the PQ. For the
	// output-buffered model it is the slot of entry into the output buffer.
	EnqueuedVOQ Slot
	// Departed is the slot the packet left the system: traversal of the
	// fabric for input-queued switches, departure from the output buffer
	// for the output-buffered switch. Never while still queued.
	Departed Slot
}

// QueueingDelay returns the packet's total queuing delay in slots,
// generation to departure. It panics if the packet has not departed, which
// would make any statistic computed from it meaningless.
func (p *Packet) QueueingDelay() int64 {
	if p.Departed == Never {
		panic(fmt.Sprintf("packet: QueueingDelay on undeparted packet %d", p.ID))
	}
	return int64(p.Departed - p.Generated)
}

// String implements fmt.Stringer for traces.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt#%d %d→%d gen=%d dep=%d", p.ID, p.Src, p.Dst, p.Generated, p.Departed)
}

// Pool recycles Packet structs to keep simulator allocation off the hot
// path. Pool is not safe for concurrent use; each simulation run owns one.
type Pool struct {
	free   []*Packet
	nextID uint64
	live   int
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a fresh packet with a unique ID and the given endpoints and
// generation slot. Timestamps other than Generated start at Never.
func (pl *Pool) Get(src, dst int, now Slot) *Packet {
	var p *Packet
	if n := len(pl.free); n > 0 {
		p = pl.free[n-1]
		pl.free = pl.free[:n-1]
	} else {
		p = &Packet{}
	}
	pl.nextID++
	pl.live++
	*p = Packet{
		ID:          pl.nextID,
		Src:         src,
		Dst:         dst,
		Generated:   now,
		EnqueuedVOQ: Never,
		Departed:    Never,
	}
	return p
}

// Put returns a packet to the pool. The caller must not retain p.
func (pl *Pool) Put(p *Packet) {
	if p == nil {
		return
	}
	pl.live--
	pl.free = append(pl.free, p)
}

// Live returns the number of packets currently checked out, used by the
// conservation property tests (arrivals = departures + queued + dropped).
func (pl *Pool) Live() int { return pl.live }

// Issued returns the total number of packets ever issued.
func (pl *Pool) Issued() uint64 { return pl.nextID }
