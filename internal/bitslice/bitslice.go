// Package bitslice models the bit-sliced switch fabric Section 6.2 points
// to for scalable wide switches ("particularly interesting when a
// scalable design using a bit-sliced switch fabric is considered"): the
// data path is split across k identical crossbar slices, each carrying
// 1/k of every cell in parallel. One scheduler configures all slices
// identically; the price is configuration fan-out (the schedule must
// reach every slice) and a new failure mode (a dead or misconfigured
// slice corrupts every cell it touches, which end-to-end CRCs catch and
// the host protocol retransmits).
//
// The model answers the engineering questions the design raises:
// configuration signal cost per slot, aggregate bandwidth scaling, and
// delivery integrity under slice failure.
package bitslice

import (
	"fmt"

	"repro/internal/matching"
)

// Fabric is a k-slice bit-sliced crossbar for n ports.
type Fabric struct {
	n, k int

	// healthy[s] marks slice s operational.
	healthy []bool

	// applied[s] is the schedule most recently configured into slice s;
	// a misconfigured slice (skew, stuck register) can be modeled by
	// poking ForceSliceSchedule.
	applied []*matching.Match

	// Cells and CorruptCells count whole-cell transfers and transfers
	// with at least one damaged slice segment.
	Cells        int64
	CorruptCells int64
}

// New returns an n-port fabric of k slices, all healthy.
func New(n, k int) *Fabric {
	if n <= 0 || k <= 0 {
		panic(fmt.Sprintf("bitslice: non-positive dimension n=%d k=%d", n, k))
	}
	f := &Fabric{n: n, k: k, healthy: make([]bool, k), applied: make([]*matching.Match, k)}
	for s := range f.healthy {
		f.healthy[s] = true
		f.applied[s] = matching.NewMatch(n)
	}
	return f
}

// N returns the port count; K the slice count.
func (f *Fabric) N() int { return f.n }

// K returns the slice count.
func (f *Fabric) K() int { return f.k }

// FailSlice marks slice s dead (its outputs carry garbage).
func (f *Fabric) FailSlice(s int) {
	f.check(s)
	f.healthy[s] = false
}

// RepairSlice restores slice s.
func (f *Fabric) RepairSlice(s int) {
	f.check(s)
	f.healthy[s] = true
}

func (f *Fabric) check(s int) {
	if s < 0 || s >= f.k {
		panic(fmt.Sprintf("bitslice: slice %d out of [0,%d)", s, f.k))
	}
}

// HealthySlices returns the number of operational slices.
func (f *Fabric) HealthySlices() int {
	c := 0
	for _, h := range f.healthy {
		if h {
			c++
		}
	}
	return c
}

// Configure distributes the schedule to every slice and returns the
// number of configuration signal bits driven: each of the k slices
// receives n crosspoint selections of ⌈log₂(n+1)⌉ bits (an input index or
// "idle") — the fan-out cost that grows linearly with the slice count and
// is the central scheduler's packaging burden in a bit-sliced design.
func (f *Fabric) Configure(m *matching.Match) (bits int, err error) {
	if m.N() != f.n {
		return 0, fmt.Errorf("bitslice: schedule for %d ports on %d-port fabric", m.N(), f.n)
	}
	sel := 1
	for 1<<uint(sel) < f.n+1 {
		sel++
	}
	for s := range f.applied {
		f.applied[s].Reset()
		for i := 0; i < f.n; i++ {
			if j := m.InToOut[i]; j != matching.Unmatched {
				f.applied[s].Pair(i, j)
			}
		}
		bits += f.n * sel
	}
	return bits, nil
}

// ForceSliceSchedule overrides one slice's configuration (fault
// injection: a skewed or stuck slice applying yesterday's schedule).
func (f *Fabric) ForceSliceSchedule(s int, m *matching.Match) {
	f.check(s)
	if m.N() != f.n {
		panic("bitslice: dimension mismatch")
	}
	f.applied[s].Reset()
	for i := 0; i < f.n; i++ {
		if j := m.InToOut[i]; j != matching.Unmatched {
			f.applied[s].Pair(i, j)
		}
	}
}

// Transfer moves the configured connections for one slot and reports, per
// output, whether the cell arrived intact: every slice must be healthy
// and configured with the same (input → output) connection, otherwise the
// reassembled cell fails its CRC. intact[j] is meaningless where the
// reference schedule leaves output j unmatched.
func (f *Fabric) Transfer(reference *matching.Match) (intact []bool, err error) {
	if reference.N() != f.n {
		return nil, fmt.Errorf("bitslice: schedule for %d ports on %d-port fabric", reference.N(), f.n)
	}
	intact = make([]bool, f.n)
	for j := 0; j < f.n; j++ {
		in := reference.OutToIn[j]
		if in == matching.Unmatched {
			continue
		}
		ok := true
		for s := 0; s < f.k; s++ {
			if !f.healthy[s] || f.applied[s].OutToIn[j] != in {
				ok = false
				break
			}
		}
		intact[j] = ok
		f.Cells++
		if !ok {
			f.CorruptCells++
		}
	}
	return intact, nil
}

// AggregateBandwidth returns the fabric's relative data bandwidth: each
// healthy slice contributes 1/k of the cell width, and a cell needs all k
// segments, so any dead slice zeroes effective goodput until repaired or
// until the fabric is reconfigured to re-stripe across k−1 slices (which
// halves... reduces per-cell width; re-striping is a control-plane action
// outside this model). The returned value is 1 if all slices are healthy,
// 0 otherwise — the brutal failure profile that makes slice sparing
// (k+1 slices) standard practice, which the Spare* helpers quantify.
func (f *Fabric) AggregateBandwidth() float64 {
	if f.HealthySlices() == f.k {
		return 1
	}
	return 0
}

// SpareOverhead returns the hardware overhead of provisioning one spare
// slice: 1/k of the fabric.
func SpareOverhead(k int) float64 {
	if k <= 0 {
		panic("bitslice: non-positive slice count")
	}
	return 1 / float64(k)
}
