package bitslice

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matching"
)

func perm(r *rand.Rand, n int) *matching.Match {
	m := matching.NewMatch(n)
	for i, j := range r.Perm(n) {
		m.Pair(i, j)
	}
	return m
}

func TestHealthyFabricDeliversIntact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(12) + 2
		k := r.Intn(8) + 1
		fab := New(n, k)
		m := perm(r, n)
		if _, err := fab.Configure(m); err != nil {
			return false
		}
		intact, err := fab.Transfer(m)
		if err != nil {
			return false
		}
		for j := 0; j < n; j++ {
			if !intact[j] {
				return false
			}
		}
		return fab.CorruptCells == 0 && fab.Cells == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigurationCost(t *testing.T) {
	// n=16 needs 5-bit crosspoint selections (16 inputs + idle); k slices
	// each take 16 of them.
	fab := New(16, 4)
	m := matching.NewMatch(16)
	bits, err := fab.Configure(m)
	if err != nil {
		t.Fatal(err)
	}
	if bits != 4*16*5 {
		t.Fatalf("configuration bits = %d, want %d", bits, 4*16*5)
	}
}

func TestDeadSliceCorruptsEverything(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	fab := New(8, 4)
	m := perm(r, 8)
	fab.Configure(m)
	fab.FailSlice(2)
	if fab.HealthySlices() != 3 {
		t.Fatalf("HealthySlices = %d", fab.HealthySlices())
	}
	if fab.AggregateBandwidth() != 0 {
		t.Fatal("dead slice should zero effective bandwidth")
	}
	intact, err := fab.Transfer(m)
	if err != nil {
		t.Fatal(err)
	}
	for j, ok := range intact {
		if ok {
			t.Fatalf("output %d intact with a dead slice", j)
		}
	}
	fab.RepairSlice(2)
	if fab.AggregateBandwidth() != 1 {
		t.Fatal("repair did not restore bandwidth")
	}
	intact, _ = fab.Transfer(m)
	for _, ok := range intact {
		if !ok {
			t.Fatal("repaired fabric still corrupting")
		}
	}
}

func TestSkewedSliceCorruptsOnlyDivergentConnections(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	n := 6
	fab := New(n, 3)
	current := perm(r, n)
	fab.Configure(current)

	// Slice 1 is stuck on a different (old) schedule.
	old := perm(r, n)
	fab.ForceSliceSchedule(1, old)

	intact, err := fab.Transfer(current)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		want := old.OutToIn[j] == current.OutToIn[j]
		if intact[j] != want {
			t.Fatalf("output %d intact=%v, want %v (old in %d, cur in %d)",
				j, intact[j], want, old.OutToIn[j], current.OutToIn[j])
		}
	}
}

func TestPartialScheduleSkipsUnmatched(t *testing.T) {
	fab := New(4, 2)
	m := matching.NewMatch(4)
	m.Pair(1, 3)
	fab.Configure(m)
	intact, err := fab.Transfer(m)
	if err != nil {
		t.Fatal(err)
	}
	if !intact[3] {
		t.Fatal("matched output corrupted")
	}
	if fab.Cells != 1 {
		t.Fatalf("Cells = %d, want 1", fab.Cells)
	}
}

func TestValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 2) },
		func() { New(2, 0) },
		func() { New(4, 2).FailSlice(5) },
		func() { New(4, 2).RepairSlice(-1) },
		func() { SpareOverhead(0) },
		func() { New(4, 2).ForceSliceSchedule(0, matching.NewMatch(5)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid parameter did not panic")
				}
			}()
			fn()
		}()
	}
	fab := New(4, 2)
	if _, err := fab.Configure(matching.NewMatch(5)); err == nil {
		t.Error("dimension mismatch configured")
	}
	if _, err := fab.Transfer(matching.NewMatch(5)); err == nil {
		t.Error("dimension mismatch transferred")
	}
}

func TestSpareOverhead(t *testing.T) {
	if SpareOverhead(4) != 0.25 || SpareOverhead(16) != 0.0625 {
		t.Fatal("spare overhead arithmetic")
	}
}
