// Package conserve is the shared frame-conservation ledger: one
// statement of the audit identity
//
//	injected == delivered + dropped + resident
//
// that every layer of the system asserts per slot — the single-switch
// chaos harness (internal/chaos), the CICQ datapath tests, and the
// Clos fabric's fabric-wide audit (internal/closfabric). Before this
// package each of those hand-rolled the same bookkeeping and error
// prose; now they share one Terms type, so the identity (and how a
// violation reads) cannot drift between layers.
package conserve

import "fmt"

// Terms is one evaluation of the conservation identity. Scope names the
// auditing layer ("engine", "sim", "fabric", ...); Slot is the slot the
// audit ran after.
type Terms struct {
	Scope string
	Slot  int64

	// Injected counts every frame the layer accepted from outside.
	Injected int64
	// Delivered counts frames handed out of the layer.
	Delivered int64
	// Dropped counts frames the layer disposed of deliberately (drop
	// policy, flushes).
	Dropped int64
	// Resident counts frames still inside the layer (queues, crosspoint
	// buffers, channels, hold registers).
	Resident int64
}

// Leak returns the identity's imbalance: positive means frames vanished
// (injected but unaccounted), negative means frames were fabricated.
func (t Terms) Leak() int64 {
	return t.Injected - t.Delivered - t.Dropped - t.Resident
}

// Check returns nil when the identity holds, else an error naming every
// term so a violation is immediately diagnosable from the message.
func (t Terms) Check() error {
	leak := t.Leak()
	if leak == 0 {
		return nil
	}
	verb := "vanished"
	if leak < 0 {
		verb = "fabricated"
	}
	return fmt.Errorf("conserve: %s slot %d: injected %d != delivered %d + dropped %d + resident %d (%d frames %s)",
		t.Scope, t.Slot, t.Injected, t.Delivered, t.Dropped, t.Resident, abs(leak), verb)
}

func abs(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
