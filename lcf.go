// Package lcf is a from-scratch reproduction of "The Least Choice First
// Scheduling Method for High-Speed Network Switches" (Gura & Eberle,
// IPPS/IPDPS 2002): the LCF crossbar scheduler in its central and
// distributed forms, every comparison scheduler of the paper's evaluation
// (PIM, iSLIP, wave front arbiter, FIFO, output buffering), the
// slot-based input-queued switch simulator behind Figure 12, the hardware
// cost and timing models behind Tables 1 and 2, and the Clint bulk/quick
// channel protocol of Section 4.
//
// This package is the public facade: it re-exports the pieces a
// downstream user needs without reaching into internal packages.
//
// # Quick start
//
//	s, _ := lcf.NewScheduler("lcf_central_rr", 16, lcf.Options{})
//	res, _ := lcf.Simulate(lcf.SimConfig{
//		N:         16,
//		Scheduler: s,
//		Load:      0.9,
//		Seed:      1,
//	})
//	fmt.Printf("mean queuing delay: %.2f slots\n", res.Delay.Mean())
//
// See examples/ for runnable programs and EXPERIMENTS.md for the mapping
// from the paper's tables and figures to this repository's harnesses.
package lcf

import (
	"fmt"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/datapath"
	"repro/internal/matching"
	switchruntime "repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/sched/registry"
	"repro/internal/simswitch"
	"repro/internal/traffic"
)

// Options re-exports the scheduler tunables (iteration bound for the
// iterative schedulers, RNG seed for the randomized ones).
type Options = sched.Options

// Scheduler is the per-slot matching engine interface.
type Scheduler = sched.Scheduler

// Match is a conflict-free input/output pairing for one slot.
type Match = matching.Match

// RequestMatrix is an n×n bit matrix; bit (i,j) means input i has at least
// one packet queued for output j.
type RequestMatrix = bitvec.Matrix

// Unmatched marks an unpaired port in a Match.
const Unmatched = matching.Unmatched

// NewScheduler builds a scheduler by its evaluation name. Valid names are
// the paper's Figure 12 labels — "lcf_central", "lcf_central_rr",
// "lcf_dist", "lcf_dist_rr", "pim", "islip", "wfront", "fifo" — plus the
// reference schedulers "maxsize", "lqf" and the fairness-ablation variant
// "lcf_central_rrpre".
func NewScheduler(name string, n int, opt Options) (Scheduler, error) {
	return registry.New(name, n, opt)
}

// SchedulerNames returns all registered scheduler names.
func SchedulerNames() []string { return registry.Names() }

// Datapath organization names for SimConfig.Datapath and
// RuntimeConfig.Datapath.
const (
	// DatapathVOQ is the paper's virtual-output-queued switch with a
	// central per-slot matching.
	DatapathVOQ = datapath.VOQ
	// DatapathCICQ is the crosspoint-buffered switch: bounded buffers at
	// every (input, output) crosspoint, decoupled per-input dispatch and
	// per-output pull arbiters applying the least-choice rule locally.
	DatapathCICQ = datapath.CICQ
)

// DatapathNames returns the known datapath organization names, sorted.
func DatapathNames() []string { return datapath.Names() }

// Figure12Schedulers returns the scheduler labels of the paper's Figure 12
// in legend order (excluding the "outbuf" switch organization).
func Figure12Schedulers() []string { return registry.Figure12Names() }

// NewRequestMatrix returns a zeroed n×n request matrix.
func NewRequestMatrix(n int) *RequestMatrix { return bitvec.NewMatrix(n) }

// NewMatch returns an empty match for an n-port switch.
func NewMatch(n int) *Match { return matching.NewMatch(n) }

// ctxPool recycles the one-field context wrapper Schedule hands to the
// scheduler interface. Without it every facade call heap-allocates the
// wrapper (the interface call makes it escape), which is the difference
// between 0 and 1 allocs/op on the per-slot hot path.
var ctxPool = sync.Pool{New: func() any { return new(sched.Context) }}

// Schedule runs one scheduling decision outside a simulation: it fills m
// with scheduler s's matching for the request matrix req. Use this to
// drive a scheduler step by step (see examples/quickstart). It does not
// allocate.
func Schedule(s Scheduler, req *RequestMatrix, m *Match) {
	ctx := ctxPool.Get().(*sched.Context)
	ctx.Req = req
	s.Schedule(ctx, m)
	ctx.Req = nil
	ctxPool.Put(ctx)
}

// ValidateMatch checks that m is conflict-free and only grants requested
// pairs.
func ValidateMatch(m *Match, req *RequestMatrix) error {
	return matching.Validate(m, sched.AsRequests(req))
}

// CentralRRMode re-exports the round-robin density ablation of the
// central scheduler (Section 3's fairness range 0..b/n).
type CentralRRMode = core.RRMode

// Round-robin density modes for NewCentralLCF.
const (
	RRNone         = core.RRNone
	RRInterleaved  = core.RRInterleaved
	RRPrescheduled = core.RRPrescheduled
)

// NewCentralLCF builds a central LCF scheduler with an explicit
// round-robin mode.
func NewCentralLCF(n int, mode CentralRRMode) Scheduler {
	return core.NewCentralRR(n, mode)
}

// NewDistLCF builds a distributed (iterative) LCF scheduler.
func NewDistLCF(n, iterations int, roundRobin bool) Scheduler {
	return core.NewDist(n, iterations, roundRobin)
}

// TrafficPattern names the built-in arrival processes.
type TrafficPattern string

// Built-in traffic patterns.
const (
	Uniform     TrafficPattern = "uniform"
	Hotspot     TrafficPattern = "hotspot"
	Diagonal    TrafficPattern = "diagonal"
	LogDiagonal TrafficPattern = "logdiagonal"
	Bursty      TrafficPattern = "bursty"
)

// SimConfig parameterizes a single simulation run through the facade.
// Zero values default to the paper's Figure 12 settings (VOQ capacity 256,
// PQ capacity 1000, 256-entry output buffers, uniform Bernoulli traffic,
// 10k warmup and 50k measured slots).
type SimConfig struct {
	N         int
	Scheduler Scheduler // nil selects the output-buffered reference switch
	Load      float64
	Seed      uint64

	// Datapath selects the switch datapath organization: "" or
	// DatapathVOQ follows the Scheduler as documented on Simulate;
	// DatapathCICQ selects the crosspoint-buffered switch, whose
	// distributed arbiters embed the least-choice rule (Scheduler must
	// be nil).
	Datapath string
	// XPCap bounds each crosspoint buffer (DatapathCICQ only; 0 takes
	// the default).
	XPCap int

	Pattern     TrafficPattern
	MeanBurst   float64 // Bursty only; default 16
	HotspotFrac float64 // Hotspot only; default 0.5

	VOQCap       int
	PQCap        int
	OutBufCap    int
	WarmupSlots  int64
	MeasureSlots int64

	// Speedup runs the scheduler and fabric that many times per slot with
	// per-output smoothing buffers (CIOQ); 0/1 = the paper's plain
	// input-queued switch.
	Speedup int

	// PipelineDepth delays the application of each schedule by
	// PipelineDepth−1 slots (Clint's overlap of scheduling and transfer,
	// Figure 5); 0/1 = immediate.
	PipelineDepth int

	// HistogramBuckets enables a delay histogram with that many unit
	// buckets on the result (for percentile reporting); 0 disables.
	HistogramBuckets int
}

// SimResult is the outcome of one run.
type SimResult = simswitch.Result

// Simulate runs one switch simulation. The switch organization follows
// the scheduler: nil → output-buffered, a "fifo" scheduler → single input
// FIFOs, anything else → virtual output queues.
func Simulate(cfg SimConfig) (*SimResult, error) {
	if cfg.N == 0 {
		cfg.N = 16
	}
	if cfg.Load < 0 || cfg.Load > 1 {
		return nil, fmt.Errorf("lcf: load %g out of [0,1]", cfg.Load)
	}
	if cfg.WarmupSlots == 0 {
		cfg.WarmupSlots = 10000
	}
	if cfg.MeasureSlots == 0 {
		cfg.MeasureSlots = 50000
	}
	if cfg.Pattern == "" {
		cfg.Pattern = Uniform
	}
	if cfg.MeanBurst == 0 {
		cfg.MeanBurst = 16
	}
	if cfg.HotspotFrac == 0 {
		cfg.HotspotFrac = 0.5
	}

	var gen traffic.Generator
	switch cfg.Pattern {
	case Uniform:
		gen = traffic.NewBernoulli(cfg.N, cfg.Load, traffic.NewUniform(cfg.N), cfg.Seed)
	case Hotspot:
		gen = traffic.NewBernoulli(cfg.N, cfg.Load, traffic.NewHotspot(cfg.N, 0, cfg.HotspotFrac), cfg.Seed)
	case Diagonal:
		gen = traffic.NewBernoulli(cfg.N, cfg.Load, traffic.NewDiagonal(cfg.N), cfg.Seed)
	case LogDiagonal:
		gen = traffic.NewBernoulli(cfg.N, cfg.Load, traffic.NewLogDiagonal(cfg.N), cfg.Seed)
	case Bursty:
		gen = traffic.NewBursty(cfg.N, cfg.Load, cfg.MeanBurst, traffic.NewUniform(cfg.N), cfg.Seed)
	default:
		return nil, fmt.Errorf("lcf: unknown traffic pattern %q", cfg.Pattern)
	}

	simCfg := simswitch.Config{
		N:                cfg.N,
		Scheduler:        cfg.Scheduler,
		Gen:              gen,
		VOQCap:           cfg.VOQCap,
		PQCap:            cfg.PQCap,
		OutBufCap:        cfg.OutBufCap,
		XPCap:            cfg.XPCap,
		WarmupSlots:      cfg.WarmupSlots,
		MeasureSlots:     cfg.MeasureSlots,
		Speedup:          cfg.Speedup,
		PipelineDepth:    cfg.PipelineDepth,
		HistogramBuckets: cfg.HistogramBuckets,
	}
	switch {
	case cfg.Datapath != "" && !datapath.Known(cfg.Datapath):
		return nil, fmt.Errorf("lcf: unknown datapath %q (known: %v)", cfg.Datapath, datapath.Names())
	case cfg.Datapath == DatapathCICQ:
		if cfg.Scheduler != nil {
			return nil, fmt.Errorf("lcf: the cicq datapath embeds the least-choice rule in its own arbiters; Scheduler must be nil")
		}
		simCfg.Mode = simswitch.CICQ
	case cfg.Scheduler == nil:
		simCfg.Mode = simswitch.OutputBuffered
	case cfg.Scheduler.Name() == "fifo":
		simCfg.Mode = simswitch.FIFO
	default:
		// The VOQ datapath (internal/switchcore) always feeds per-VOQ
		// backlogs to the scheduler, so weight-aware schedulers (lqf)
		// need no special configuration here.
		simCfg.Mode = simswitch.VOQ
	}
	return simswitch.Run(simCfg)
}

// Live switch runtime (internal/runtime): the concurrent engine behind
// cmd/lcfd that serves traffic through a real-time slot loop instead of
// replaying a trace. See the runtime package documentation for the
// admission/arbitration/delivery model and the backpressure contract.
type (
	// RuntimeConfig parameterizes a live engine; SlotPeriod > 0 selects
	// the free-running arbiter, 0 the test-oriented lockstep mode.
	RuntimeConfig = switchruntime.Config
	// RuntimeEngine is one live switch instance.
	RuntimeEngine = switchruntime.Engine
	// RuntimeFrame is one cell travelling through the live switch.
	RuntimeFrame = switchruntime.Frame
	// RuntimeSnapshot is the JSON-serializable counter view served by
	// lcfd's metrics endpoint.
	RuntimeSnapshot = switchruntime.Snapshot
	// RuntimeSlotEvent is the per-slot trace callback payload.
	RuntimeSlotEvent = switchruntime.SlotEvent
)

// Live-engine admission errors.
var (
	// ErrBackpressure reports a full VOQ: the frame was refused, the
	// caller should slow down (the paper's finite-buffer model surfaced
	// as flow control).
	ErrBackpressure = switchruntime.ErrBackpressure
	// ErrRuntimeClosed reports admission after Close.
	ErrRuntimeClosed = switchruntime.ErrClosed
)

// NewRuntime builds a live switch engine around any Scheduler.
func NewRuntime(cfg RuntimeConfig) (*RuntimeEngine, error) {
	return switchruntime.New(cfg)
}
