// Benchmarks, one per reproduced table/figure (see EXPERIMENTS.md for the
// index). These measure the cost of regenerating each artifact; the
// artifacts themselves are printed by cmd/lcfsim and cmd/lcfhw.
package lcf

import (
	"fmt"
	"testing"
)

// BenchmarkTable1GateModel — E1: the Table 1 gate/register cost model,
// evaluated across the port range the scalability discussion covers.
func BenchmarkTable1GateModel(b *testing.B) {
	sink := 0
	for i := 0; i < b.N; i++ {
		for _, n := range []int{4, 8, 16, 32, 64, 128, 256} {
			t := HardwareCostTable1(n)
			sink += t.TotalGates
		}
	}
	_ = sink
}

// BenchmarkTable2CycleModel — E2: a full 5n+3-cycle scheduling pass of the
// cycle-accurate hardware model at the Clint port count (n=16).
func BenchmarkTable2CycleModel(b *testing.B) {
	s, err := NewScheduler("lcf_central_rr", 16, Options{})
	if err != nil {
		b.Fatal(err)
	}
	req := NewRequestMatrix(16)
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if (i+j)%3 != 0 {
				req.Set(i, j)
			}
		}
	}
	m := NewMatch(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Schedule(s, req, m)
	}
}

// BenchmarkCommCostModel — E3: the Section 6.2 communication-cost formulas
// across the scaling range.
func BenchmarkCommCostModel(b *testing.B) {
	sink := 0
	for i := 0; i < b.N; i++ {
		for n := 4; n <= 1024; n *= 2 {
			sink += CentralCommBits(n) + DistCommBits(n, 4)
		}
	}
	_ = sink
}

// benchSim runs a fixed-size simulation for one scheduler label.
func benchSim(b *testing.B, name string, load float64, pattern TrafficPattern) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		var s Scheduler
		if name != OutbufName {
			var err error
			s, err = NewScheduler(name, 16, Options{Iterations: 4, Seed: uint64(i)})
			if err != nil {
				b.Fatal(err)
			}
		}
		res, err := Simulate(SimConfig{
			N: 16, Scheduler: s, Load: load, Seed: uint64(i), Pattern: pattern,
			WarmupSlots: 1000, MeasureSlots: 5000,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Delay.Count() == 0 {
			b.Fatal("no packets measured")
		}
	}
}

// BenchmarkFigure12a — E4: one Figure 12a cell (6k slots at 16 ports,
// load 0.9, uniform Bernoulli) per scheduler, including the outbuf
// reference that anchors Figure 12b.
func BenchmarkFigure12a(b *testing.B) {
	names := append(Figure12Schedulers(), OutbufName)
	for _, name := range names {
		b.Run(name, func(b *testing.B) { benchSim(b, name, 0.9, Uniform) })
	}
}

// BenchmarkFigure12b — E5: the full mini-grid needed for one relative-
// latency row (every scheduler plus the outbuf denominator at one load),
// i.e. the marginal cost of a Figure 12b point.
func BenchmarkFigure12b(b *testing.B) {
	cfg := SweepConfig{
		N:            16,
		Loads:        []float64{0.9},
		Seed:         1,
		WarmupSlots:  500,
		MeasureSlots: 2500,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Sweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := res.RelativeTo(OutbufName); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFairnessSweep — E6: n² scheduling cycles of LCF+RR under full
// demand, the window within which every pair must be served.
func BenchmarkFairnessSweep(b *testing.B) {
	s := NewCentralLCF(16, RRInterleaved)
	req := NewRequestMatrix(16)
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			req.Set(i, j)
		}
	}
	m := NewMatch(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := 0; c < 16*16; c++ {
			Schedule(s, req, m)
		}
	}
}

// BenchmarkSaturationThroughput — E11: a load-1.0 run per scheduler, the
// measurement behind the saturation-throughput table.
func BenchmarkSaturationThroughput(b *testing.B) {
	for _, name := range []string{"lcf_central_rr", "islip", "pim", "fifo"} {
		b.Run(name, func(b *testing.B) { benchSim(b, name, 1.0, Uniform) })
	}
}

// BenchmarkIterationAblation — E12: distributed LCF at load 0.95 with 1–6
// iterations, the convergence-speed ablation.
func BenchmarkIterationAblation(b *testing.B) {
	for _, iters := range []int{1, 2, 4, 6} {
		b.Run(map[int]string{1: "iter1", 2: "iter2", 4: "iter4", 6: "iter6"}[iters], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := NewScheduler("lcf_dist", 16, Options{Iterations: iters, Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Simulate(SimConfig{
					N: 16, Scheduler: s, Load: 0.95, Seed: uint64(i),
					WarmupSlots: 1000, MeasureSlots: 5000,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRRDensityAblation — E13: the three round-robin densities of the
// central scheduler (none / interleaved diagonal / prescheduled diagonal),
// Section 3's fairness-throughput trade-off.
func BenchmarkRRDensityAblation(b *testing.B) {
	for _, mode := range []CentralRRMode{RRNone, RRInterleaved, RRPrescheduled} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := NewCentralLCF(16, mode)
				if _, err := Simulate(SimConfig{
					N: 16, Scheduler: s, Load: 0.95, Seed: uint64(i),
					WarmupSlots: 1000, MeasureSlots: 5000,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBurstyTraffic — E14: the bursty-arrivals extension sweep point
// (mean burst 16, load 0.8).
func BenchmarkBurstyTraffic(b *testing.B) {
	for _, name := range []string{"lcf_central_rr", "islip"} {
		b.Run(name, func(b *testing.B) { benchSim(b, name, 0.8, Bursty) })
	}
}

// BenchmarkSpeedupCIOQ — extension: one CIOQ sweep cell (speedup 2) vs
// the plain input-queued run at the same load.
func BenchmarkSpeedupCIOQ(b *testing.B) {
	for _, sp := range []int{1, 2} {
		b.Run(map[int]string{1: "speedup1", 2: "speedup2"}[sp], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := NewScheduler("lcf_central_rr", 16, Options{Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Simulate(SimConfig{
					N: 16, Scheduler: s, Load: 0.95, Seed: uint64(i), Speedup: sp,
					WarmupSlots: 1000, MeasureSlots: 5000,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFairnessMeasured — the measured-fairness experiment (min
// share / Jain index at saturation) for the LCF pair.
func BenchmarkFairnessMeasured(b *testing.B) {
	cfg := SweepConfig{
		N:            16,
		Schedulers:   []string{"lcf_central", "lcf_central_rr"},
		Seed:         1,
		WarmupSlots:  500,
		MeasureSlots: 4000,
	}
	for i := 0; i < b.N; i++ {
		if _, err := MeasureFairness(cfg, 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMulticastPolicies — extension: the Section 4.3 / ref [11]
// multicast disciplines at saturating copy load.
func BenchmarkMulticastPolicies(b *testing.B) {
	for _, p := range []MulticastPolicy{NoSplitting, FewestFirst, LargestFirst} {
		b.Run(p.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := SimulateMulticast(MulticastConfig{
					N: 16, Policy: p, Load: 0.225, Fanout: 4, Seed: uint64(i),
					Warmup: 500, Measure: 4000,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// decisionMatrix returns the dense request pattern the decision
// benchmarks use at any width: ~3/4 of all (i,j) pairs request.
func decisionMatrix(n int) *RequestMatrix {
	req := NewRequestMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if (i*5+j*3)%4 != 0 {
				req.Set(i, j)
			}
		}
	}
	return req
}

// BenchmarkSchedulerDecisionN1024 is the n=1024 decision tier, run for
// the word-parallel schedulers only: at this width the bit-at-a-time
// schedulers are orders of magnitude slower and would drown a smoke run,
// while the bitvec kernels are exactly what the tier is sizing. This is
// the per-slot compute the pipelined engine overlaps with transmit
// (DESIGN.md §13); results/bench_pr8.json records the trajectory.
func BenchmarkSchedulerDecisionN1024(b *testing.B) {
	const n = 1024
	for _, name := range []string{"lcf_central_rr", "islip"} {
		b.Run(name, func(b *testing.B) {
			s, err := NewScheduler(name, n, Options{Iterations: 4, Seed: 7})
			if err != nil {
				b.Fatal(err)
			}
			r := decisionMatrix(n)
			m := NewMatch(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Schedule(s, r, m)
			}
		})
	}
}

// BenchmarkSchedulerDecision measures one scheduling decision per
// scheduler on a dense request matrix — the per-slot cost that bounds
// achievable line rate in a software implementation. The n=16 tier is
// the paper's switch size; n=64 and n=256 measure the scaling the
// word-parallel kernels target (hundreds of ports, where bit-at-a-time
// scans become the wall).
func BenchmarkSchedulerDecision(b *testing.B) {
	for _, name := range SchedulerNames() {
		b.Run(name, func(b *testing.B) {
			for _, n := range []int{16, 64, 256} {
				b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
					s, err := NewScheduler(name, n, Options{Iterations: 4, Seed: 7})
					if err != nil {
						b.Fatal(err)
					}
					var r *RequestMatrix
					if name == "fifo" {
						// FIFO accepts only single-request rows (head-of-line).
						r = NewRequestMatrix(n)
						for i := 0; i < n; i++ {
							r.Set(i, (i*7)%n)
						}
					} else {
						r = decisionMatrix(n)
					}
					m := NewMatch(n)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						Schedule(s, r, m)
					}
				})
			}
		})
	}
}
