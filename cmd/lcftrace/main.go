// Command lcftrace runs a short simulation and prints one line per slot:
// the request matrix population, the computed matching, and the packets
// moved. It is the debugging companion to lcfsim — the view of Figure 3
// extended over time.
//
// It is also the consumer of the obs slot-event ring: -drain renders a
// trace drained from a running lcfd (or saved to a file) as a
// human-readable timeline with per-grant LCF rule attribution, and -jsonl
// saves ring events as JSONL for offline analysis.
//
// Usage:
//
//	lcftrace -sched lcf_central_rr -n 4 -load 0.8 -slots 20
//	lcftrace -sched pim -matrix              # also dump the request matrix rows
//	lcftrace -jsonl trace.jsonl -slots 100   # simulate, save ring events
//	lcftrace -drain http://127.0.0.1:9417/trace   # timeline from live lcfd
//	curl -s 127.0.0.1:9417/trace | lcftrace -drain -
//	lcftrace -drain trace.jsonl              # timeline from a saved file
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"repro/internal/matching"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sched/registry"
	"repro/internal/simswitch"
	"repro/internal/traffic"
)

func main() {
	var (
		schedName = flag.String("sched", "lcf_central_rr", "scheduler name")
		n         = flag.Int("n", 4, "switch port count")
		load      = flag.Float64("load", 0.8, "offered load")
		slots     = flag.Int64("slots", 20, "slots to trace")
		seed      = flag.Uint64("seed", 1, "RNG seed")
		iters     = flag.Int("iterations", 4, "iterations for iterative schedulers")
		matrix    = flag.Bool("matrix", false, "dump the request matrix rows each slot")
		arrivals  = flag.String("arrivals", "", "replay arrivals from a trace file (format: slot input dst)")
		drain     = flag.String("drain", "", "render a slot-event trace from a URL, file, or - (stdin) instead of simulating")
		jsonlOut  = flag.String("jsonl", "", "write ring events as JSONL to this file (- for stdout)")
	)
	flag.Parse()

	if *drain != "" {
		if err := drainTrace(*drain, *jsonlOut); err != nil {
			fmt.Fprintf(os.Stderr, "lcftrace: %v\n", err)
			os.Exit(1)
		}
		return
	}

	s, err := registry.New(*schedName, *n, sched.Options{Iterations: *iters, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lcftrace: %v\n", err)
		os.Exit(1)
	}
	mode := simswitch.VOQ
	if *schedName == "fifo" {
		mode = simswitch.FIFO
	}

	gen := traffic.Generator(traffic.NewBernoulli(*n, *load, traffic.NewUniform(*n), *seed))
	if *arrivals != "" {
		f, err := os.Open(*arrivals)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lcftrace: %v\n", err)
			os.Exit(1)
		}
		gen, err = traffic.ParseTrace(f, *n)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lcftrace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %s, n=%d, arrivals from %s\n", *schedName, *n, *arrivals)
	} else {
		fmt.Printf("trace: %s, n=%d, load=%.2f, seed=%d\n", *schedName, *n, *load, *seed)
	}
	fmt.Printf("%-6s %-9s %-28s %s\n", "slot", "requests", "matching (in→out)", "moved")

	// With -jsonl the run also records the obs ring (sized to keep every
	// slot) and saves it afterwards — the offline twin of lcfd's /trace.
	var tracer *obs.Tracer
	if *jsonlOut != "" {
		tracer = obs.NewTracer(*n, int(*slots)+1)
		tracer.Enable()
	}

	cfg := simswitch.Config{
		N:            *n,
		Mode:         mode,
		Scheduler:    s,
		Gen:          gen,
		WarmupSlots:  0,
		MeasureSlots: *slots,
		Validate:     true,
		Tracer:       tracer,
		Trace: func(ev simswitch.TraceEvent) {
			var pairs []string
			for i, j := range ev.Match.InToOut {
				if j != matching.Unmatched {
					pairs = append(pairs, fmt.Sprintf("%d→%d", i, j))
				}
			}
			fmt.Printf("%-6d %-9d %-28s %d\n", ev.Slot, ev.Requests.PopCount(),
				strings.Join(pairs, " "), ev.Moved)
			if *matrix {
				for i := 0; i < ev.Requests.N(); i++ {
					fmt.Printf("       R[%d] %s\n", i, ev.Requests.Row(i))
				}
			}
		},
	}
	res, err := simswitch.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lcftrace: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\n%d slots: %d generated, %d forwarded, %d dropped, %d still queued; mean delay %.2f slots\n",
		*slots, res.Counters.Generated, res.Counters.Forwarded, res.Counters.DroppedPQ,
		res.StillQueued, res.Delay.Mean())

	if tracer != nil {
		if err := writeJSONL(*jsonlOut, tracer.Drain()); err != nil {
			fmt.Fprintf(os.Stderr, "lcftrace: %v\n", err)
			os.Exit(1)
		}
	}
}

// drainTrace reads ring events from src — an http(s) URL (lcfd's /trace
// endpoint), a JSONL file, or "-" for stdin — and either re-saves them as
// JSONL (jsonlOut != "") or renders the human-readable timeline.
func drainTrace(src, jsonlOut string) error {
	var r io.ReadCloser
	switch {
	case src == "-":
		r = os.Stdin
	case strings.HasPrefix(src, "http://"), strings.HasPrefix(src, "https://"):
		resp, err := http.Get(src)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
			resp.Body.Close()
			return fmt.Errorf("%s: %s: %s", src, resp.Status, strings.TrimSpace(string(body)))
		}
		r = resp.Body
	default:
		f, err := os.Open(src)
		if err != nil {
			return err
		}
		r = f
	}
	evs, err := obs.ReadJSONL(r)
	r.Close()
	if err != nil {
		return err
	}
	if jsonlOut != "" {
		return writeJSONL(jsonlOut, evs)
	}
	renderTimeline(os.Stdout, evs)
	return nil
}

func writeJSONL(dst string, evs []obs.Event) error {
	w := os.Stdout
	if dst != "-" {
		f, err := os.Create(dst)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return obs.WriteJSONL(w, evs)
}

// renderTimeline prints one line per traced slot with every grant's
// decision rule and choice count: `2→0[lcf c1]` is input 2 granted output
// 0 by the least-choice rule with one eligible output left, `0→3[diag
// c2]` came from the rotating diagonal's priority level. Schedulers
// without attribution render bare `in→out` pairs.
func renderTimeline(w io.Writer, evs []obs.Event) {
	fmt.Fprintf(w, "%-8s %-9s %-7s %s\n", "slot", "requests", "matched", "grants (in→out[rule choices])")
	for _, ev := range evs {
		if ev.Kind == "fault" {
			fmt.Fprintf(w, "%-8d fault: port %d %s link %s\n", ev.Slot, ev.Port, ev.Dir, ev.State)
			continue
		}
		if ev.Kind == "spec" {
			fmt.Fprintf(w, "%-8d spec: %d hit %d missed %d repaired\n", ev.Slot, ev.Hits, ev.Misses, ev.Repairs)
			continue
		}
		if ev.Kind == "flow" {
			if ev.Disp == "rejected" {
				fmt.Fprintf(w, "%-8d flow: %#x rejected (table full)\n", ev.Slot, ev.Flow)
			} else {
				fmt.Fprintf(w, "%-8d flow: %#x %s → port %d\n", ev.Slot, ev.Flow, ev.Disp, ev.Port)
			}
			continue
		}
		if ev.Kind == "class" {
			fmt.Fprintf(w, "%-8d class: c%d → port %d SLO violated (latency %d slots)\n", ev.Slot, ev.Class, ev.Port, ev.Latency)
			continue
		}
		var pairs []string
		for _, g := range ev.Grants {
			switch {
			case g.Rule == "" || g.Rule == "unattributed":
				pairs = append(pairs, fmt.Sprintf("%d→%d", g.In, g.Out))
			default:
				rule := g.Rule
				if rule == "diagonal" {
					rule = "diag"
				} else if rule == "prescheduled" {
					rule = "presched"
				}
				pairs = append(pairs, fmt.Sprintf("%d→%d[%s c%d]", g.In, g.Out, rule, g.Choices))
			}
		}
		fmt.Fprintf(w, "%-8d %-9d %-7d %s\n", ev.Slot, ev.Requested, ev.Matched, strings.Join(pairs, " "))
	}
	fmt.Fprintf(w, "%d slots drained\n", len(evs))
}
