// Command lcftrace runs a short simulation and prints one line per slot:
// the request matrix population, the computed matching, and the packets
// moved. It is the debugging companion to lcfsim — the view of Figure 3
// extended over time.
//
// Usage:
//
//	lcftrace -sched lcf_central_rr -n 4 -load 0.8 -slots 20
//	lcftrace -sched pim -matrix      # also dump the request matrix rows
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/matching"
	"repro/internal/sched"
	"repro/internal/sched/registry"
	"repro/internal/simswitch"
	"repro/internal/traffic"
)

func main() {
	var (
		schedName = flag.String("sched", "lcf_central_rr", "scheduler name")
		n         = flag.Int("n", 4, "switch port count")
		load      = flag.Float64("load", 0.8, "offered load")
		slots     = flag.Int64("slots", 20, "slots to trace")
		seed      = flag.Uint64("seed", 1, "RNG seed")
		iters     = flag.Int("iterations", 4, "iterations for iterative schedulers")
		matrix    = flag.Bool("matrix", false, "dump the request matrix rows each slot")
		arrivals  = flag.String("arrivals", "", "replay arrivals from a trace file (format: slot input dst)")
	)
	flag.Parse()

	s, err := registry.New(*schedName, *n, sched.Options{Iterations: *iters, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lcftrace: %v\n", err)
		os.Exit(1)
	}
	mode := simswitch.VOQ
	if *schedName == "fifo" {
		mode = simswitch.FIFO
	}

	gen := traffic.Generator(traffic.NewBernoulli(*n, *load, traffic.NewUniform(*n), *seed))
	if *arrivals != "" {
		f, err := os.Open(*arrivals)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lcftrace: %v\n", err)
			os.Exit(1)
		}
		gen, err = traffic.ParseTrace(f, *n)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lcftrace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %s, n=%d, arrivals from %s\n", *schedName, *n, *arrivals)
	} else {
		fmt.Printf("trace: %s, n=%d, load=%.2f, seed=%d\n", *schedName, *n, *load, *seed)
	}
	fmt.Printf("%-6s %-9s %-28s %s\n", "slot", "requests", "matching (in→out)", "moved")

	cfg := simswitch.Config{
		N:            *n,
		Mode:         mode,
		Scheduler:    s,
		Gen:          gen,
		WarmupSlots:  0,
		MeasureSlots: *slots,
		Validate:     true,
		Trace: func(ev simswitch.TraceEvent) {
			var pairs []string
			for i, j := range ev.Match.InToOut {
				if j != matching.Unmatched {
					pairs = append(pairs, fmt.Sprintf("%d→%d", i, j))
				}
			}
			fmt.Printf("%-6d %-9d %-28s %d\n", ev.Slot, ev.Requests.PopCount(),
				strings.Join(pairs, " "), ev.Moved)
			if *matrix {
				for i := 0; i < ev.Requests.N(); i++ {
					fmt.Printf("       R[%d] %s\n", i, ev.Requests.Row(i))
				}
			}
		},
	}
	res, err := simswitch.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lcftrace: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\n%d slots: %d generated, %d forwarded, %d dropped, %d still queued; mean delay %.2f slots\n",
		*slots, res.Counters.Generated, res.Counters.Forwarded, res.Counters.DroppedPQ,
		res.StillQueued, res.Delay.Mean())
}
