package main

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	rtrace "runtime/trace"
	"strconv"
	"time"

	"repro/internal/obs"
)

// buildRegistry assembles the daemon's Prometheus view: the engine's
// lcf_engine_*/lcf_grants_*/histogram metrics, the tracer's lcf_trace_*
// metrics, and the TCP front-end's own counters. Every name here must be
// documented in OBSERVABILITY.md (TestMetricsDocumented enforces both
// directions).
func (s *server) buildRegistry() *obs.Registry {
	r := obs.NewRegistry()
	s.engine.Register(r)
	if s.tracer != nil {
		s.tracer.Register(r)
	}

	r.Gauge("lcf_uptime_seconds", "Seconds since the daemon started.", func() float64 {
		return time.Since(s.started).Seconds()
	})
	r.Counter("lcf_server_accepted_total", "Connections granted a port.", s.accepted.Value)
	r.Counter("lcf_server_rejected_total", "Connections refused because every port was taken.", s.rejected.Value)
	r.Counter("lcf_server_nacks_total", "Nack frames sent for backpressured admissions.", s.nacksSent.Value)
	r.Counter("lcf_server_dropped_no_client_total", "Delivered frames dropped because no connection owned the output port.", s.droppedNoClient.Value)
	r.Counter("lcf_server_protocol_errors_total", "Connections dropped for malformed or unexpected frames.", s.protocolErrors.Value)
	r.Gauge("lcf_server_active_connections", "Connections currently holding a port.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		active := 0
		for _, c := range s.ports {
			if c != nil {
				active++
			}
		}
		return float64(active)
	})
	return r
}

// handleTrace exposes the slot-event ring: GET drains the current window
// as JSONL (one event per line, newest window, oldest first — the format
// cmd/lcftrace reads), POST with ?enabled=true|false toggles recording at
// runtime. Draining does not consume: two scrapes may overlap.
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		http.Error(w, "tracing not built: restart with -trace-ring > 0", http.StatusNotFound)
		return
	}
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := obs.WriteJSONL(w, s.tracer.Drain()); err != nil {
			return
		}
	case http.MethodPost:
		v := r.URL.Query().Get("enabled")
		enabled, err := strconv.ParseBool(v)
		if err != nil {
			http.Error(w, "POST /trace needs ?enabled=true or ?enabled=false", http.StatusBadRequest)
			return
		}
		s.tracer.SetEnabled(enabled)
		fmt.Fprintf(w, "tracing enabled=%v (ring %d events, %d emitted)\n",
			enabled, s.tracer.Capacity(), s.tracer.Emitted())
	default:
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// debugMux builds the -debug-addr handler: the standard pprof surface
// plus /debug/trace, which streams a runtime execution trace for
// ?seconds=N (default 1, capped at 60) — `go tool trace` reads the
// result. On a separate listener so profiling endpoints are never exposed
// on the metrics port by accident.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/trace", handleExecTrace)
	return mux
}

func handleExecTrace(w http.ResponseWriter, r *http.Request) {
	seconds := 1
	if v := r.URL.Query().Get("seconds"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 || n > 60 {
			http.Error(w, "?seconds must be in [1,60]", http.StatusBadRequest)
			return
		}
		seconds = n
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="lcfd.trace"`)
	if err := rtrace.Start(w); err != nil {
		// Only one execution trace can run at a time.
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	defer rtrace.Stop()
	select {
	case <-time.After(time.Duration(seconds) * time.Second):
	case <-r.Context().Done():
	}
}
