// Command lcfd runs the live LCF switch daemon: a TCP server wrapping any
// registered scheduler in the internal/runtime slot loop, speaking the
// Clint-style framing of internal/clint on the data plane.
//
// Protocol (per connection, all frames CRC-16 protected):
//
//   - On accept, the switch assigns the connection the lowest free port
//     and says so with a grant frame {NodeID=port, Gnt=port, GntVal=true}
//     — the same initialization handshake Clint uses (Section 4.1: "NodeID
//     assigns the receiving host its port number at initialization time").
//     With every port taken, the switch answers {GntVal=false} and closes.
//   - The client sends data frames; each is admitted at the connection's
//     input port. A full VOQ answers with a nack frame carrying the
//     frame's sequence number — explicit backpressure, never a silent
//     drop.
//   - With -flows, the client may instead send flow data frames naming a
//     64-bit flow id: the switch's steering table (internal/flowtable)
//     resolves the input port — sticky per flow, chosen by -flow-policy —
//     and admits the frame there. A full VOQ or a full steering table
//     answers with the same nack frame. GET /flows serves the tier's
//     counters and per-flow fairness summary.
//   - With -classes, the client may send class data frames labelled with
//     a class index (and optionally a per-frame deadline budget): the
//     frame waits in the (input, output) PIFO ranking tier
//     (internal/pifo) in the order the -rank function decides, and SLO
//     outcomes surface as lcf_class_* metrics and kind=class trace
//     events.
//   - Frames matched to output port j are delivered, src filled in, over
//     the connection that owns port j (each connection is both input and
//     output port of the same index, as in Clint's host↔switch star).
//
// Observability (see OBSERVABILITY.md for the complete reference):
//
//   - GET /metrics on -http serves the live counters (per-port
//     throughput, matched/requested ratio, grant attribution by LCF rule,
//     VOQ depth and match-size histograms, slot-loop compute latency) as
//     JSON by default, or as Prometheus text exposition format 0.0.4 when
//     the Accept header asks for text/plain.
//   - GET /trace drains the in-memory slot-event ring (enabled with
//     -trace, sized with -trace-ring) as JSONL; POST /trace?enabled=true
//     toggles recording at runtime. cmd/lcftrace renders the JSONL.
//   - -debug-addr serves net/http/pprof profiles and /debug/trace
//     runtime execution traces on a separate listener.
//
// Usage:
//
//	lcfd                                  # lcf_central_rr, n=16, :9416
//	lcfd -sched islip -slot 100us
//	lcfd -flows 1000000 -flow-policy po2  # flow-steered admission
//	lcfd -classes rt:0:4:16,bulk:2:1 -rank deadline   # PIFO service classes
//	curl localhost:9417/flows | jq .fairness.jain
//	curl localhost:9417/metrics | jq .engine.match_ratio
//	curl -H 'Accept: text/plain' localhost:9417/metrics   # Prometheus
//	curl -X POST 'localhost:9417/trace?enabled=true'
//	curl localhost:9417/trace | lcftrace
//
// See cmd/lcfload for the matching closed-loop load generator.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/clint"
	"repro/internal/datapath"
	"repro/internal/flowtable"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pifo"
	rt "repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/sched/registry"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:9416", "TCP address for the data plane")
		httpAddr   = flag.String("http", "127.0.0.1:9417", "HTTP address for the metrics endpoint (empty disables)")
		schedName  = flag.String("sched", "lcf_central_rr", "scheduler (see lcfsim for the list; ignored with -datapath=cicq)")
		dpName     = flag.String("datapath", datapath.VOQ, "switch datapath organization: "+strings.Join(datapath.Names(), " or ")+" (cicq buffers frames at the crosspoints and embeds the least-choice rule in per-port arbiters)")
		xpCap      = flag.Int("xpcap", datapath.DefaultXPCap, "per-crosspoint buffer capacity (-datapath=cicq only)")
		n          = flag.Int("n", 16, "switch port count (max 16: the grant frame's NodeID field is 4 bits)")
		slot       = flag.Duration("slot", 200*time.Microsecond, "slot period of the arbiter loop")
		voqCap     = flag.Int("voqcap", 256, "per-VOQ capacity (admission backpressure threshold)")
		outCap     = flag.Int("outcap", 256, "per-output delivery buffer (frames)")
		prealloc   = flag.Bool("prealloc", false, "size every VOQ ring for -voqcap at startup (no growth allocations on the admit path, n²·voqcap resident frame slots)")
		iterations = flag.Int("iterations", 4, "iterations for the iterative schedulers")
		seed       = flag.Uint64("seed", 1, "scheduler RNG seed")
		traceRing  = flag.Int("trace-ring", 4096, "slot-event trace ring capacity (0 removes the tracer entirely)")
		traceOn    = flag.Bool("trace", false, "start with slot-event tracing enabled (toggle later with POST /trace)")
		debugAddr  = flag.String("debug-addr", "", "HTTP address for pprof and runtime execution traces (empty disables)")
		faultPol   = flag.String("fault-policy", "drop", "disposition of frames stranded behind a failed port: drop (flush and count) or hold (keep until recovery)")
		pipeline   = flag.Bool("pipeline", false, "overlap each slot's transmit with computing the next slot's matching from a speculative snapshot (voq datapath only; see DESIGN.md §13)")
		shards     = flag.Int("shards", 0, "worker shards for the snapshot/dispatch loops: 0 auto-sizes from GOMAXPROCS at n>=256, 1 disables")
		flows      = flag.Int("flows", 0, "flow steering table capacity — enables the flow front tier and the /flows endpoint (0 disables; see DESIGN.md §14)")
		flowPolicy = flag.String("flow-policy", "", "flow steering policy: "+strings.Join(flowtable.Names(), ", ")+" (default hash; requires -flows)")
		flowEpoch  = flag.Duration("flow-epoch", time.Second, "period of the flow idle-eviction epoch clock (requires -flows)")
		flowIdle   = flag.Uint("flow-idle", 60, "epochs a flow may sit idle before eviction; 0 keeps flows forever (requires -flows)")
		classSpec  = flag.String("classes", "", "service classes as name[:priority[:weight[:slo_slots]]],... — enables the PIFO ranking tier in front of the VOQs (empty disables)")
		rankName   = flag.String("rank", "", "class rank function: "+strings.Join(pifo.Names(), ", ")+" (default fifo; requires -classes)")
		classQCap  = flag.Int("classqcap", 0, "per-(input,output) PIFO capacity (default -voqcap; requires -classes)")
	)
	flag.Parse()
	if *n <= 0 || *n > clint.NumPorts {
		// Ports ≥ 16 cannot be represented in the grant frame's 4-bit
		// NodeID field; accepting them here would corrupt the handshake of
		// every client on a high port.
		fatalUsage("-n is %d, must be in [1,%d]: Clint's grant frame carries a 4-bit port id, so a switch with more ports cannot complete its handshake", *n, clint.NumPorts)
	}
	if *slot <= 0 {
		fatalUsage("-slot must be positive (got %v)", *slot)
	}
	var policy rt.FaultPolicy
	switch *faultPol {
	case "drop":
		policy = rt.DropStranded
	case "hold":
		policy = rt.HoldStranded
	default:
		fatalUsage("-fault-policy must be drop or hold (got %q)", *faultPol)
	}

	if !datapath.Known(*dpName) {
		fatalUsage("-datapath must be one of %s (got %q)", strings.Join(datapath.Names(), ", "), *dpName)
	}
	if *xpCap <= 0 {
		fatalUsage("-xpcap must be positive (got %d)", *xpCap)
	}
	if *pipeline && *dpName == datapath.CICQ {
		// rt.New would refuse too, but say why at the flag level: the CICQ
		// pull arbiters mutate live crosspoint state as they decide, so
		// there is no pure matching to speculate and validate.
		fatalUsage("-pipeline requires the voq datapath: cicq arbitration reads live crosspoint state and cannot be speculated")
	}
	if *shards < 0 {
		fatalUsage("-shards must be >= 0 (got %d)", *shards)
	}
	if *flows < 0 {
		fatalUsage("-flows must be >= 0 (got %d)", *flows)
	}
	if *flows > 0 {
		if _, err := flowtable.NewPolicy(*flowPolicy); err != nil {
			fatalUsage("-flow-policy: %v", err)
		}
		if *flowEpoch <= 0 {
			fatalUsage("-flow-epoch must be positive (got %v)", *flowEpoch)
		}
	} else {
		// Flow-tier tuning without the tier is a misconfiguration, not a
		// silent no-op: say so instead of ignoring the flag.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "flow-policy", "flow-epoch", "flow-idle":
				fatalUsage("-%s requires -flows > 0", f.Name)
			}
		})
	}
	var classes []pifo.Class
	if *classSpec != "" {
		var err error
		if classes, err = pifo.ParseClasses(*classSpec); err != nil {
			fatalUsage("-classes: %v", err)
		}
		if *classQCap < 0 {
			fatalUsage("-classqcap must be >= 0 (got %d)", *classQCap)
		}
	} else {
		// Class-tier tuning without the tier is a misconfiguration too.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "rank", "classqcap":
				fatalUsage("-%s requires -classes", f.Name)
			}
		})
	}

	// The CICQ datapath runs its own distributed least-choice arbiters;
	// a central scheduler has nothing to schedule there.
	var s sched.Scheduler
	if *dpName != datapath.CICQ {
		var err error
		s, err = registry.New(*schedName, *n, sched.Options{Iterations: *iterations, Seed: *seed})
		if err != nil {
			fatal("%v", err)
		}
	}
	var tracer *obs.Tracer
	if *traceRing > 0 {
		tracer = obs.NewTracer(*n, *traceRing)
		tracer.SetEnabled(*traceOn)
	} else if *traceOn {
		fatalUsage("-trace needs a ring: set -trace-ring > 0")
	}
	engine, err := rt.New(rt.Config{
		N: *n, Scheduler: s, Datapath: *dpName, XPCap: *xpCap,
		VOQCap: *voqCap, OutCap: *outCap, SlotPeriod: *slot,
		PreallocVOQs: *prealloc, Tracer: tracer, FaultPolicy: policy,
		Pipeline: *pipeline, Shards: *shards,
		Flows: *flows, FlowPolicy: *flowPolicy,
		Classes: classes, Rank: *rankName, ClassQCap: *classQCap,
	})
	if err != nil {
		fatal("%v", err)
	}

	srv := newServer(engine, *n)
	srv.tracer = tracer
	srv.registry = srv.buildRegistry()
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal("%v", err)
	}
	if err := engine.Start(); err != nil {
		fatal("%v", err)
	}
	for j := 0; j < *n; j++ {
		srv.wg.Add(1)
		go srv.outputPump(j)
	}

	// The flow-epoch clock: advance the table's epoch every -flow-epoch
	// and sweep out flows idle longer than -flow-idle epochs. Steering
	// state only — frames already queued are never touched by eviction.
	var epochStop chan struct{}
	if *flows > 0 && *flowIdle > 0 {
		epochStop = make(chan struct{})
		go func() {
			tick := time.NewTicker(*flowEpoch)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					engine.AdvanceFlowEpoch()
					engine.EvictIdleFlows(uint32(*flowIdle))
				case <-epochStop:
					return
				}
			}
		}()
	}

	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", srv.handleMetrics)
		mux.HandleFunc("/trace", srv.handleTrace)
		mux.HandleFunc("/fault", srv.handleFault)
		mux.HandleFunc("/flows", srv.handleFlows)
		mux.HandleFunc("/", srv.handleRoot)
		go func() {
			if err := http.ListenAndServe(*httpAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "lcfd: metrics endpoint: %v\n", err)
			}
		}()
	}
	if *debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(*debugAddr, debugMux()); err != nil {
				fmt.Fprintf(os.Stderr, "lcfd: debug endpoint: %v\n", err)
			}
		}()
	}

	fmt.Printf("lcfd: %s on %s (n=%d, slot %v", engine.SchedulerName(), ln.Addr(), *n, *slot)
	if *httpAddr != "" {
		fmt.Printf(", metrics on http://%s/metrics", *httpAddr)
	}
	fmt.Println(")")

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Println("lcfd: shutting down (draining in-flight slots)")
		ln.Close()
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			break // listener closed: shut down
		}
		go srv.serveConn(conn)
	}

	srv.closeConns()
	if epochStop != nil {
		close(epochStop)
	}
	engine.Close() // drains; output pumps exit when the channels close
	srv.wg.Wait()
	snap := engine.Snapshot()
	fmt.Printf("lcfd: done after %d slots: admitted %d, delivered %d, backpressured %d\n",
		snap.Slot, snap.Admitted, snap.Delivered, snap.Backpressured)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lcfd: "+format+"\n", args...)
	os.Exit(1)
}

// fatalUsage exits with status 2, the conventional code for command-line
// usage errors (fatal's 1 is for runtime failures).
func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lcfd: "+format+"\n", args...)
	os.Exit(2)
}

// client is one connected host: a port, an outbox serialized by a writer
// goroutine, and a gone signal that unblocks anyone queuing toward it.
// The outbox is never closed — senders race with disconnection, and a
// send on a closed channel would panic the daemon. Instead close(gone)
// retires the writer; buffered leftovers go to the GC with the client.
type client struct {
	conn   net.Conn
	port   int
	outbox chan []byte
	gone   chan struct{}
}

type server struct {
	engine   *rt.Engine
	n        int
	tracer   *obs.Tracer   // nil when -trace-ring 0
	registry *obs.Registry // the Prometheus view of /metrics

	mu    sync.Mutex
	ports []*client // index = port; nil = free

	wg sync.WaitGroup

	accepted        metrics.Counter // connections granted a port
	rejected        metrics.Counter // connections refused (no free port)
	nacksSent       metrics.Counter
	droppedNoClient metrics.Counter // deliveries with no connection on the output
	protocolErrors  metrics.Counter

	started time.Time
}

func newServer(engine *rt.Engine, n int) *server {
	return &server{engine: engine, n: n, ports: make([]*client, n), started: time.Now()}
}

// assign grabs the lowest free port for c, or -1. Taking ownership
// recovers the port's links (release failed them when the previous owner
// disconnected), so a reconnecting client reclaims a working port: under
// the hold fault policy, frames stranded toward the port while it had no
// owner start flowing to the new connection within one slot. Recover runs
// under s.mu, paired with the FailPort in release, so a release/assign
// race on the same port can never leave a connected client's links down.
func (s *server) assign(c *client) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	for p, occ := range s.ports {
		if occ == nil {
			s.ports[p] = c
			c.port = p
			s.engine.Recover(p)
			return p
		}
	}
	return -1
}

// release frees c's port and fails its links: with nobody to consume
// deliveries the port is a black hole, and marking it down redirects the
// scheduler's slots to live ports instead of wasting grants on frames the
// output pump would drop. The configured -fault-policy decides whether
// frames already queued toward it are flushed or held for the next owner.
func (s *server) release(c *client) {
	s.mu.Lock()
	if s.ports[c.port] == c {
		s.ports[c.port] = nil
		s.engine.FailPort(c.port)
	}
	s.mu.Unlock()
}

func (s *server) lookup(port int) *client {
	s.mu.Lock()
	c := s.ports[port]
	s.mu.Unlock()
	return c
}

func (s *server) closeConns() {
	s.mu.Lock()
	conns := append([]*client(nil), s.ports...)
	s.mu.Unlock()
	for _, c := range conns {
		if c != nil {
			c.conn.Close()
		}
	}
}

// outputPump forwards output port j's deliveries to whichever connection
// owns port j at dequeue time. It exits when the engine closes its
// outputs. A slow client fills its outbox; the pump then blocks, the
// output channel fills, and the arbiter masks the column — backpressure
// propagates all the way to the senders' VOQs instead of buffering
// without bound. A frame whose owner vanished mid-queue is dropped and
// counted, never forwarded to the port's next owner: a fresh connection
// must not receive a previous session's Seq/Stamp values.
func (s *server) outputPump(j int) {
	defer s.wg.Done()
	for f := range s.engine.Output(j) {
		c := s.lookup(j)
		if c == nil {
			s.droppedNoClient.Inc()
			continue
		}
		buf := make([]byte, clint.DataLen)
		clint.Data{Src: uint8(f.Src), Dst: uint8(f.Dst), Seq: f.Seq, Stamp: f.Stamp}.EncodeTo(buf)
		select {
		case c.outbox <- buf:
			// A frame buffered just as the client dies is dropped with the
			// outbox (the writer exits via gone and the channel is GC'd).
		case <-c.gone:
			s.droppedNoClient.Inc()
		}
	}
}

func (s *server) serveConn(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := &client{conn: conn, outbox: make(chan []byte, 256), gone: make(chan struct{})}
	port := s.assign(c)
	if port < 0 {
		s.rejected.Inc()
		conn.Write(clint.Grant{GntVal: false}.Encode())
		conn.Close()
		return
	}
	s.accepted.Inc()

	// Hello: the Clint initialization grant carrying the port id.
	if _, err := conn.Write(clint.Grant{NodeID: uint8(port), Gnt: uint8(port), GntVal: true}.Encode()); err != nil {
		s.release(c)
		close(c.gone)
		conn.Close()
		return
	}

	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		writeLoop(c)
	}()

	s.readLoop(c)

	s.release(c)
	close(c.gone)
	conn.Close()
	writerWG.Wait()
}

// maxWriteBatch bounds one flush. 64 frames is ~4 KB of data frames —
// far below any socket buffer, so a flush never splits a frame across
// kernel writes in practice, and a pathological outbox cannot pin the
// writer in a single writev forever.
const maxWriteBatch = 64

// writeLoop serializes c's outbox onto the connection. Frames that
// accumulated while the previous flush was on the wire go out together
// as one writev-style net.Buffers write — under bursty delivery (the
// pipelined engine dispatches a whole matching per slot) this collapses
// up to maxWriteBatch syscalls into one, instead of paying a write per
// frame. The loop exits when the client is gone; buffered leftovers are
// dropped with the outbox.
func writeLoop(c *client) {
	scratch := make(net.Buffers, 0, maxWriteBatch)
	for {
		select {
		case b := <-c.outbox:
			bufs := append(scratch[:0], b)
		fill:
			for len(bufs) < maxWriteBatch {
				select {
				case nb := <-c.outbox:
					bufs = append(bufs, nb)
				default:
					break fill
				}
			}
			if _, err := bufs.WriteTo(c.conn); err != nil {
				// Close the conn so the read loop errors out promptly (it
				// then closes c.gone); keep draining the outbox in the
				// meantime so pumps never block on a corpse.
				c.conn.Close()
			}
		case <-c.gone:
			return
		}
	}
}

func (s *server) readLoop(c *client) {
	var hdr [1]byte
	buf := make([]byte, 64)
	for {
		if _, err := io.ReadFull(c.conn, hdr[:]); err != nil {
			return
		}
		flen := clint.FrameLen(hdr[0])
		if flen == 0 {
			s.protocolErrors.Inc()
			return
		}
		frame := buf[:flen]
		frame[0] = hdr[0]
		if _, err := io.ReadFull(c.conn, frame[1:]); err != nil {
			return
		}
		switch hdr[0] {
		case clint.TypeData:
			d, err := clint.DecodeData(frame)
			if err != nil {
				s.protocolErrors.Inc()
				return
			}
			err = s.engine.Admit(c.port, int(d.Dst), d.Seq, d.Stamp)
			switch {
			case err == nil:
			case errors.Is(err, rt.ErrBackpressure), errors.Is(err, rt.ErrBadPort),
				errors.Is(err, rt.ErrPortDown):
				// A frame toward a failed or unknown port is nacked like a
				// full VOQ: the sender sees backpressure, not a dead
				// connection, and can retry once the port recovers.
				s.nack(c, d.Seq)
			case errors.Is(err, rt.ErrClosed):
				return
			default:
				return
			}
		case clint.TypeFlowData:
			d, err := clint.DecodeFlowData(frame)
			if err != nil {
				s.protocolErrors.Inc()
				return
			}
			_, err = s.engine.AdmitFlow(d.Flow, int(d.Dst), d.Seq, d.Stamp)
			switch {
			case err == nil:
			case errors.Is(err, rt.ErrNoFlowTable):
				// Flow frames toward a flow-free daemon are a configuration
				// mismatch, not load: nacking would invite an infinite retry.
				s.protocolErrors.Inc()
				return
			case errors.Is(err, rt.ErrBackpressure), errors.Is(err, rt.ErrBadPort),
				errors.Is(err, rt.ErrPortDown), errors.Is(err, flowtable.ErrTableFull):
				// A full steering table reads exactly like a full VOQ from
				// the host's side: backpressure on Seq, retry later.
				s.nack(c, d.Seq)
			case errors.Is(err, rt.ErrClosed):
				return
			default:
				return
			}
		case clint.TypeClassData:
			d, err := clint.DecodeClassData(frame)
			if err != nil {
				s.protocolErrors.Inc()
				return
			}
			// The wire deadline is a relative slot budget; a value that
			// does not fit int64 cannot be compared against the slot
			// counter, so it falls back to the class default like 0.
			budget := int64(d.Deadline)
			if budget < 0 {
				budget = 0
			}
			err = s.engine.AdmitClass(c.port, int(d.Dst), int(d.Class), d.Seq, d.Stamp, budget)
			switch {
			case err == nil:
			case errors.Is(err, rt.ErrNoClasses), errors.Is(err, rt.ErrBadClass):
				// Class frames toward a classless daemon — or naming a class
				// the daemon was not configured with — are a configuration
				// mismatch, not load: nacking would invite an infinite retry.
				s.protocolErrors.Inc()
				return
			case errors.Is(err, rt.ErrBackpressure), errors.Is(err, rt.ErrBadPort),
				errors.Is(err, rt.ErrPortDown):
				// A full PIFO reads exactly like a full VOQ from the host's
				// side: backpressure on Seq, retry later.
				s.nack(c, d.Seq)
			case errors.Is(err, rt.ErrClosed):
				return
			default:
				return
			}
		case clint.TypeConfig:
			// Control-plane configuration (request/enable masks) is not
			// interpreted by the live switch — the request matrix is
			// derived from admitted frames — but remains valid protocol.
			if _, err := clint.DecodeConfig(frame); err != nil {
				s.protocolErrors.Inc()
				return
			}
		default:
			// Grant and nack frames only flow switch → host.
			s.protocolErrors.Inc()
			return
		}
	}
}

func (s *server) nack(c *client, seq uint64) {
	b := make([]byte, clint.NackLen)
	clint.Nack{Seq: seq}.EncodeTo(b)
	select {
	case c.outbox <- b:
		s.nacksSent.Inc()
	case <-c.gone:
	}
}

// metricsPayload is the /metrics JSON document.
type metricsPayload struct {
	Scheduler string      `json:"scheduler"`
	N         int         `json:"n"`
	UptimeSec float64     `json:"uptime_sec"`
	Engine    rt.Snapshot `json:"engine"`
	Server    struct {
		ActiveConns     int   `json:"active_conns"`
		Accepted        int64 `json:"accepted"`
		Rejected        int64 `json:"rejected"`
		NacksSent       int64 `json:"nacks_sent"`
		DroppedNoClient int64 `json:"dropped_no_client"`
		ProtocolErrors  int64 `json:"protocol_errors"`
	} `json:"server"`
}

func (s *server) payload() metricsPayload {
	var p metricsPayload
	p.Scheduler = s.engine.SchedulerName()
	p.N = s.n
	p.UptimeSec = time.Since(s.started).Seconds()
	p.Engine = s.engine.Snapshot()
	s.mu.Lock()
	for _, c := range s.ports {
		if c != nil {
			p.Server.ActiveConns++
		}
	}
	s.mu.Unlock()
	p.Server.Accepted = s.accepted.Value()
	p.Server.Rejected = s.rejected.Value()
	p.Server.NacksSent = s.nacksSent.Value()
	p.Server.DroppedNoClient = s.droppedNoClient.Value()
	p.Server.ProtocolErrors = s.protocolErrors.Value()
	return p
}

// handleMetrics serves the live counters, content-negotiated: JSON by
// default (the format this endpoint has always spoken), Prometheus text
// exposition 0.0.4 when the Accept header prefers text/plain. Only GET
// (and HEAD) are meaningful on a read-only resource; anything else is
// 405 with the Allow header set.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	switch obs.NegotiateMetricsFormat(r) {
	case obs.FormatPrometheus:
		w.Header().Set("Content-Type", obs.ContentTypePrometheus)
		if r.Method == http.MethodHead {
			return
		}
		if err := s.registry.WritePrometheus(w); err != nil {
			// The writer is the socket; nothing sensible left to send.
			return
		}
	default:
		w.Header().Set("Content-Type", "application/json")
		if r.Method == http.MethodHead {
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.payload())
	}
}

// flowsPayload is the GET /flows document: the flow tier's counter
// snapshot plus the per-flow service-fairness summary (Jain's index,
// min/max share, resident flows per port).
type flowsPayload struct {
	Flows    *rt.FlowSnapshot   `json:"flows"`
	Fairness flowtable.Fairness `json:"fairness"`
}

// handleFlows serves the flow tier's state. 404 without -flows: the
// resource genuinely does not exist on a flow-free daemon.
func (s *server) handleFlows(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	tbl := s.engine.Flows()
	if tbl == nil {
		http.Error(w, "flow tier not enabled (start lcfd with -flows)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if r.Method == http.MethodHead {
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(flowsPayload{Flows: s.engine.Snapshot().Flows, Fairness: tbl.Fairness()})
}

// portLinkState is one port's entry in the GET /fault document.
type portLinkState struct {
	Port       int  `json:"port"`
	InputDown  bool `json:"input_down"`
	OutputDown bool `json:"output_down"`
	Connected  bool `json:"connected"`
}

// handleFault is the live fault-injection control surface:
//
//	GET  /fault                                  — link state of every port
//	POST /fault?port=3&state=down                — fail both links of port 3
//	POST /fault?port=3&dir=output&state=up       — recover just the output link
//
// dir is input, output or both (default both); state is down or up.
// Transitions take effect at the next slot boundary and are idempotent.
// Note that a client connecting onto a port recovers it (port reclaim),
// so a manual down on a port does not survive that port's next handshake.
func (s *server) handleFault(w http.ResponseWriter, r *http.Request) {
	writeState := func() {
		states := make([]portLinkState, s.n)
		for p := 0; p < s.n; p++ {
			in, out := s.engine.LinkDown(p)
			states[p] = portLinkState{Port: p, InputDown: in, OutputDown: out, Connected: s.lookup(p) != nil}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(states)
	}
	switch r.Method {
	case http.MethodGet:
		writeState()
	case http.MethodPost:
		q := r.URL.Query()
		port, err := strconv.Atoi(q.Get("port"))
		if err != nil || port < 0 || port >= s.n {
			http.Error(w, fmt.Sprintf("POST /fault needs ?port in [0,%d)", s.n), http.StatusBadRequest)
			return
		}
		dir := q.Get("dir")
		if dir == "" {
			dir = "both"
		}
		var down bool
		switch q.Get("state") {
		case "down":
			down = true
		case "up":
			down = false
		default:
			http.Error(w, "POST /fault needs ?state=down or ?state=up", http.StatusBadRequest)
			return
		}
		var ferr error
		switch {
		case dir == "input" && down:
			ferr = s.engine.FailInput(port)
		case dir == "input":
			ferr = s.engine.RecoverInput(port)
		case dir == "output" && down:
			ferr = s.engine.FailOutput(port)
		case dir == "output":
			ferr = s.engine.RecoverOutput(port)
		case dir == "both" && down:
			ferr = s.engine.FailPort(port)
		case dir == "both":
			ferr = s.engine.Recover(port)
		default:
			http.Error(w, "POST /fault needs ?dir=input, output or both", http.StatusBadRequest)
			return
		}
		if ferr != nil {
			http.Error(w, ferr.Error(), http.StatusBadRequest)
			return
		}
		writeState()
	default:
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *server) handleRoot(w http.ResponseWriter, _ *http.Request) {
	p := s.payload()
	fmt.Fprintf(w, "lcfd %s n=%d slot=%d conns=%d\n", p.Scheduler, p.N, p.Engine.Slot, p.Server.ActiveConns)
	fmt.Fprintf(w, "admitted=%d delivered=%d backpressured=%d backlog=%d match_ratio=%.3f\n",
		p.Engine.Admitted, p.Engine.Delivered, p.Engine.Backpressured, p.Engine.Backlog, p.Engine.MatchRatio)
	fmt.Fprintf(w, "throughput=%.3f frames/port/slot, slot compute p50=%.0fns p99=%.0fns\n",
		p.Engine.ThroughputPerSlot, p.Engine.SlotLatencyP50, p.Engine.SlotLatencyP99)
}
