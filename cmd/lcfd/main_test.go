package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/clint"
	"repro/internal/datapath"
	"repro/internal/obs"
	"repro/internal/pifo"
	rt "repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/sched/registry"
)

// newTestServer builds a lockstep daemon front-end (no ticker, no
// listener) with a few slots of traffic already through it.
func newTestServer(t *testing.T, ringCap int) *server {
	t.Helper()
	return newTestServerDP(t, ringCap, datapath.VOQ)
}

// newTestServerDP is newTestServer with an explicit datapath, mirroring
// the -datapath flag: the CICQ organization takes no central scheduler.
func newTestServerDP(t *testing.T, ringCap int, dpName string) *server {
	t.Helper()
	const n = 4
	var s sched.Scheduler
	if dpName != datapath.CICQ {
		var err error
		s, err = registry.New("lcf_central_rr", n, sched.Options{Iterations: 4, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
	}
	var tracer *obs.Tracer
	if ringCap > 0 {
		tracer = obs.NewTracer(n, ringCap)
		tracer.Enable()
	}
	engine, err := rt.New(rt.Config{N: n, Scheduler: s, Datapath: dpName, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(engine, n)
	srv.tracer = tracer
	srv.registry = srv.buildRegistry()
	for slot := 0; slot < 3; slot++ {
		for i := 0; i < n; i++ {
			if err := engine.Admit(i, (i+slot)%n, uint64(slot), 0); err != nil {
				t.Fatal(err)
			}
		}
		engine.Tick()
	}
	return srv
}

// newTestServerFlows is newTestServer with the flow front tier enabled,
// mirroring -flows/-flow-policy.
func newTestServerFlows(t *testing.T, flows int, policy string) *server {
	t.Helper()
	const n = 4
	s, err := registry.New("lcf_central_rr", n, sched.Options{Iterations: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := rt.New(rt.Config{N: n, Scheduler: s, Flows: flows, FlowPolicy: policy})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(engine, n)
	srv.registry = srv.buildRegistry()
	return srv
}

// newTestServerClasses is newTestServer with the PIFO class tier
// enabled, mirroring -classes/-rank.
func newTestServerClasses(t *testing.T, rank string) *server {
	t.Helper()
	const n = 4
	s, err := registry.New("lcf_central_rr", n, sched.Options{Iterations: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	classes, err := pifo.ParseClasses("rt:0:4:16,bulk:2:1")
	if err != nil {
		t.Fatal(err)
	}
	engine, err := rt.New(rt.Config{N: n, Scheduler: s, Classes: classes, Rank: rank})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(engine, n)
	srv.registry = srv.buildRegistry()
	return srv
}

func TestMetricsContentNegotiation(t *testing.T) {
	srv := newTestServer(t, 64)

	// Default (no Accept header): the JSON document this endpoint has
	// always served, now with an explicit Content-Type.
	rec := httptest.NewRecorder()
	srv.handleMetrics(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("default Content-Type = %q", ct)
	}
	var p metricsPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("JSON body does not parse: %v", err)
	}
	if p.Engine.Slot != 3 || p.N != 4 {
		t.Errorf("payload slot=%d n=%d", p.Engine.Slot, p.N)
	}

	// Accept: text/plain selects the Prometheus exposition.
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	rec = httptest.NewRecorder()
	srv.handleMetrics(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != obs.ContentTypePrometheus {
		t.Errorf("Prometheus Content-Type = %q", ct)
	}
	scrape, err := obs.ParsePrometheus(rec.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	if v, ok := scrape.Value("lcf_engine_slots_total"); !ok || v != 3 {
		t.Errorf("lcf_engine_slots_total = %g,%v", v, ok)
	}
	if v, ok := scrape.Value("lcf_trace_enabled"); !ok || v != 1 {
		t.Errorf("lcf_trace_enabled = %g,%v", v, ok)
	}

	// A JSON-preferring Accept still gets JSON.
	req = httptest.NewRequest(http.MethodGet, "/metrics", nil)
	req.Header.Set("Accept", "application/json, text/plain")
	rec = httptest.NewRecorder()
	srv.handleMetrics(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Accept json Content-Type = %q", ct)
	}

	// HEAD: headers only.
	req = httptest.NewRequest(http.MethodHead, "/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	rec = httptest.NewRecorder()
	srv.handleMetrics(rec, req)
	if rec.Body.Len() != 0 || rec.Header().Get("Content-Type") != obs.ContentTypePrometheus {
		t.Errorf("HEAD wrote %d body bytes, Content-Type %q", rec.Body.Len(), rec.Header().Get("Content-Type"))
	}

	// Writes are not a thing /metrics does.
	rec = httptest.NewRecorder()
	srv.handleMetrics(rec, httptest.NewRequest(http.MethodPost, "/metrics", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics = %d, want 405", rec.Code)
	}
	if allow := rec.Header().Get("Allow"); allow != "GET, HEAD" {
		t.Errorf("Allow = %q", allow)
	}
}

func TestTraceEndpoint(t *testing.T) {
	srv := newTestServer(t, 64)

	rec := httptest.NewRecorder()
	srv.handleTrace(rec, httptest.NewRequest(http.MethodGet, "/trace", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	evs, err := obs.ReadJSONL(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("drained %d events, want 3", len(evs))
	}
	for _, g := range evs[0].Grants {
		if g.Rule == "" || g.Choices == 0 {
			t.Errorf("grant lacks attribution: %+v", g)
		}
	}

	// Toggle off, then a disabled engine slot records nothing new.
	rec = httptest.NewRecorder()
	srv.handleTrace(rec, httptest.NewRequest(http.MethodPost, "/trace?enabled=false", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /trace?enabled=false = %d: %s", rec.Code, rec.Body.String())
	}
	srv.engine.Tick()
	if got := srv.tracer.Emitted(); got != 3 {
		t.Errorf("disabled tracer emitted %d events, want 3", got)
	}

	rec = httptest.NewRecorder()
	srv.handleTrace(rec, httptest.NewRequest(http.MethodPost, "/trace?enabled=bogus", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bogus toggle = %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.handleTrace(rec, httptest.NewRequest(http.MethodDelete, "/trace", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /trace = %d, want 405", rec.Code)
	}
}

func TestTraceEndpointWithoutRing(t *testing.T) {
	srv := newTestServer(t, 0)
	rec := httptest.NewRecorder()
	srv.handleTrace(rec, httptest.NewRequest(http.MethodGet, "/trace", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("GET /trace without a ring = %d, want 404", rec.Code)
	}
}

func TestDebugMux(t *testing.T) {
	mux := debugMux()

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/cmdline", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof cmdline = %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/trace?seconds=0", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("seconds=0 = %d, want 400", rec.Code)
	}

	// A cancelled request context ends the capture immediately, so the
	// happy path is testable without sleeping out the window.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodGet, "/debug/trace?seconds=60", nil).WithContext(ctx)
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Body.Len() == 0 {
		t.Errorf("execution trace: code %d, %d bytes", rec.Code, rec.Body.Len())
	}
}

func TestFaultEndpoint(t *testing.T) {
	srv := newTestServer(t, 0)

	post := func(query string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		srv.handleFault(rec, httptest.NewRequest(http.MethodPost, "/fault"+query, nil))
		return rec
	}
	state := func() []portLinkState {
		rec := httptest.NewRecorder()
		srv.handleFault(rec, httptest.NewRequest(http.MethodGet, "/fault", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /fault = %d: %s", rec.Code, rec.Body.String())
		}
		var states []portLinkState
		if err := json.Unmarshal(rec.Body.Bytes(), &states); err != nil {
			t.Fatalf("GET /fault body does not parse: %v", err)
		}
		return states
	}

	if got := state(); len(got) != 4 || got[2] != (portLinkState{Port: 2}) {
		t.Fatalf("initial state = %+v", got)
	}

	// Fail both links of port 2, then recover just the output.
	if rec := post("?port=2&state=down"); rec.Code != http.StatusOK {
		t.Fatalf("POST down = %d: %s", rec.Code, rec.Body.String())
	}
	if got := state()[2]; !got.InputDown || !got.OutputDown {
		t.Fatalf("after down: %+v", got)
	}
	if rec := post("?port=2&dir=output&state=up"); rec.Code != http.StatusOK {
		t.Fatalf("POST output up = %d: %s", rec.Code, rec.Body.String())
	}
	if got := state()[2]; !got.InputDown || got.OutputDown {
		t.Fatalf("after output recovery: %+v", got)
	}

	// The POST response body itself carries the updated state document.
	rec := post("?port=2&dir=input&state=up")
	var states []portLinkState
	if err := json.Unmarshal(rec.Body.Bytes(), &states); err != nil {
		t.Fatalf("POST body does not parse: %v", err)
	}
	if states[2].InputDown || states[2].OutputDown {
		t.Fatalf("POST response state = %+v", states[2])
	}

	// Parameter validation: each bad request is a 400.
	for _, q := range []string{"", "?port=9&state=down", "?port=-1&state=down", "?port=x&state=down", "?port=1", "?port=1&state=sideways", "?port=1&dir=diagonal&state=down"} {
		if rec := post(q); rec.Code != http.StatusBadRequest {
			t.Errorf("POST /fault%s = %d, want 400", q, rec.Code)
		}
	}
	rec = httptest.NewRecorder()
	srv.handleFault(rec, httptest.NewRequest(http.MethodDelete, "/fault", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /fault = %d, want 405", rec.Code)
	}
}

// TestFlowsEndpoint pins the GET /flows contract: the flow tier's
// counters plus the fairness summary on a flow-enabled daemon, 404 on a
// flow-free one, 405 for writes.
func TestFlowsEndpoint(t *testing.T) {
	srv := newTestServerFlows(t, 1024, "po2")
	for id := uint64(0); id < 16; id++ {
		if _, err := srv.engine.AdmitFlow(id, int(id)%4, id, 0); err != nil {
			t.Fatal(err)
		}
	}

	rec := httptest.NewRecorder()
	srv.handleFlows(rec, httptest.NewRequest(http.MethodGet, "/flows", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /flows = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var p flowsPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("/flows body does not parse: %v", err)
	}
	if p.Flows == nil || p.Flows.Policy != "po2" || p.Flows.Resident != 16 {
		t.Fatalf("/flows snapshot = %+v", p.Flows)
	}
	if p.Fairness.Flows != 16 || p.Fairness.Jain != 1 {
		t.Fatalf("/flows fairness = %+v (every flow served once, Jain must be 1)", p.Fairness)
	}

	rec = httptest.NewRecorder()
	srv.handleFlows(rec, httptest.NewRequest(http.MethodPost, "/flows", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /flows = %d, want 405", rec.Code)
	}

	// A flow-free daemon has no /flows resource.
	rec = httptest.NewRecorder()
	newTestServer(t, 0).handleFlows(rec, httptest.NewRequest(http.MethodGet, "/flows", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("GET /flows without -flows = %d, want 404", rec.Code)
	}
}

// TestReadLoopFlowFrames drives flow data frames through the wire-facing
// read loop: each frame is steered and admitted by flow id, sticky per
// flow, and the same frames against a flow-free daemon are a protocol
// error (configuration mismatch, not backpressure).
func TestReadLoopFlowFrames(t *testing.T) {
	srv := newTestServerFlows(t, 1024, "hash")
	host, sw := net.Pipe()
	defer host.Close()
	c := &client{conn: sw, outbox: make(chan []byte, 16), gone: make(chan struct{})}
	if p := srv.assign(c); p != 0 {
		t.Fatalf("assign = %d", p)
	}
	done := make(chan struct{})
	go func() {
		srv.readLoop(c)
		close(done)
	}()

	const frames = 24
	for k := 0; k < frames; k++ {
		f := clint.FlowData{Flow: uint64(k % 8), Dst: uint8(k % 4), Seq: uint64(k)}
		if _, err := host.Write(f.Encode()); err != nil {
			t.Fatal(err)
		}
	}
	host.Close() // EOF retires the read loop once every frame is consumed
	<-done

	st := srv.engine.Flows().Stats()
	if st.Resident != 8 || st.Steered != frames {
		t.Fatalf("resident %d steered %d, want 8 resident / %d steered", st.Resident, st.Steered, frames)
	}
	if got := srv.engine.Snapshot().Admitted; got != frames {
		t.Fatalf("admitted %d frames, want %d", got, frames)
	}

	// The same wire bytes against a flow-free daemon: protocol error.
	plain := newTestServer(t, 0)
	host2, sw2 := net.Pipe()
	defer host2.Close()
	c2 := &client{conn: sw2, outbox: make(chan []byte, 16), gone: make(chan struct{})}
	plain.assign(c2)
	done2 := make(chan struct{})
	go func() {
		plain.readLoop(c2)
		close(done2)
	}()
	if _, err := host2.Write(clint.FlowData{Flow: 1, Dst: 1, Seq: 1}.Encode()); err != nil {
		t.Fatal(err)
	}
	<-done2
	if got := plain.protocolErrors.Value(); got != 1 {
		t.Fatalf("protocol errors = %d, want 1", got)
	}
}

// TestReadLoopClassFrames drives class data frames through the
// wire-facing read loop: each frame is admitted into the PIFO tier at
// the connection's port with its class label, and the same frames
// against a classless daemon are a protocol error (configuration
// mismatch, not backpressure), as is an out-of-range class index.
func TestReadLoopClassFrames(t *testing.T) {
	srv := newTestServerClasses(t, "strict")
	host, sw := net.Pipe()
	defer host.Close()
	c := &client{conn: sw, outbox: make(chan []byte, 16), gone: make(chan struct{})}
	if p := srv.assign(c); p != 0 {
		t.Fatalf("assign = %d", p)
	}
	done := make(chan struct{})
	go func() {
		srv.readLoop(c)
		close(done)
	}()

	const frames = 24
	for k := 0; k < frames; k++ {
		f := clint.ClassData{Class: uint8(k % 2), Dst: uint8(k % 4), Seq: uint64(k)}
		if _, err := host.Write(f.Encode()); err != nil {
			t.Fatal(err)
		}
	}
	host.Close() // EOF retires the read loop once every frame is consumed
	<-done

	snap := srv.engine.Snapshot()
	if snap.Admitted != frames {
		t.Fatalf("admitted %d frames, want %d", snap.Admitted, frames)
	}
	if snap.Classes == nil {
		t.Fatal("Snapshot.Classes nil after class admissions")
	}
	var byClass int64
	for _, cs := range snap.Classes.Classes {
		byClass += cs.Admitted
	}
	if byClass != frames {
		t.Fatalf("class ledger admitted %d, want %d", byClass, frames)
	}

	// An out-of-range class index on a class-enabled daemon: protocol error.
	host2, sw2 := net.Pipe()
	defer host2.Close()
	c2 := &client{conn: sw2, outbox: make(chan []byte, 16), gone: make(chan struct{})}
	srv.release(c)
	if p := srv.assign(c2); p != 0 {
		t.Fatalf("reassign = %d", p)
	}
	done2 := make(chan struct{})
	go func() {
		srv.readLoop(c2)
		close(done2)
	}()
	if _, err := host2.Write(clint.ClassData{Class: 9, Dst: 1, Seq: 1}.Encode()); err != nil {
		t.Fatal(err)
	}
	<-done2
	if got := srv.protocolErrors.Value(); got != 1 {
		t.Fatalf("protocol errors = %d, want 1", got)
	}

	// The same wire bytes against a classless daemon: protocol error.
	plain := newTestServer(t, 0)
	host3, sw3 := net.Pipe()
	defer host3.Close()
	c3 := &client{conn: sw3, outbox: make(chan []byte, 16), gone: make(chan struct{})}
	plain.assign(c3)
	done3 := make(chan struct{})
	go func() {
		plain.readLoop(c3)
		close(done3)
	}()
	if _, err := host3.Write(clint.ClassData{Class: 0, Dst: 1, Seq: 1}.Encode()); err != nil {
		t.Fatal(err)
	}
	<-done3
	if got := plain.protocolErrors.Value(); got != 1 {
		t.Fatalf("protocol errors = %d, want 1", got)
	}
}

// TestPortReclaim pins the disconnect/reconnect link-state contract:
// release fails the departed client's links so the arbiter stops wasting
// grants on an unconsumed output, and a later assign on the same port
// recovers them for the new owner.
func TestPortReclaim(t *testing.T) {
	srv := newTestServer(t, 0)

	a := &client{}
	if p := srv.assign(a); p != 0 {
		t.Fatalf("first assign = %d, want port 0", p)
	}
	srv.release(a)
	if in, out := srv.engine.LinkDown(0); !in || !out {
		t.Fatalf("after release: input down=%v output down=%v, want both down", in, out)
	}
	if srv.lookup(0) != nil {
		t.Fatal("released port still owned")
	}

	b := &client{}
	if p := srv.assign(b); p != 0 {
		t.Fatalf("reassign = %d, want reclaimed port 0", p)
	}
	if in, out := srv.engine.LinkDown(0); in || out {
		t.Fatalf("after reclaim: input down=%v output down=%v, want both up", in, out)
	}

	// A stale release (old client object racing a reassign) must not fail
	// the new owner's links.
	srv.release(a)
	if in, out := srv.engine.LinkDown(0); in || out {
		t.Fatal("stale release failed the reclaimed port's links")
	}
	if srv.lookup(0) != b {
		t.Fatal("stale release evicted the new owner")
	}
}

// TestWriteLoopBatches pins the batched writer's contract: frames
// queued in a burst all reach the peer, intact and in order, through
// coalesced net.Buffers flushes, and the loop retires promptly when the
// client is gone even with frames still buffered.
func TestWriteLoopBatches(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type accepted struct {
		conn net.Conn
		err  error
	}
	acceptc := make(chan accepted, 1)
	go func() {
		conn, err := ln.Accept()
		acceptc <- accepted{conn, err}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	acc := <-acceptc
	if acc.err != nil {
		t.Fatal(acc.err)
	}
	defer acc.conn.Close()

	// Preload a burst larger than one batch before the writer starts, so
	// the first flush coalesces maxWriteBatch frames and the remainder
	// rides the next one.
	const frames = maxWriteBatch + 17
	c := &client{conn: acc.conn, outbox: make(chan []byte, frames), gone: make(chan struct{})}
	var want []byte
	for k := 0; k < frames; k++ {
		buf := make([]byte, clint.DataLen)
		clint.Data{Src: uint8(k % 16), Dst: uint8((k + 1) % 16), Seq: uint64(k), Stamp: uint64(k)}.EncodeTo(buf)
		want = append(want, buf...)
		c.outbox <- buf
	}
	done := make(chan struct{})
	go func() {
		writeLoop(c)
		close(done)
	}()

	got := make([]byte, len(want))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("reading the burst back: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("burst arrived corrupted or out of order")
	}
	for off := 0; off < len(got); off += clint.DataLen {
		if _, err := clint.DecodeData(got[off : off+clint.DataLen]); err != nil {
			t.Fatalf("frame at offset %d does not decode: %v", off, err)
		}
	}

	close(c.gone)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("writeLoop did not exit after gone")
	}
}

// TestMetricsDocumented diffs the daemon's metric registry against
// OBSERVABILITY.md in both directions: every registered metric must be
// documented, and every documented lcf_* base name must exist in the
// registry. Renaming or adding a metric without updating the doc fails
// here; so does documenting vapor.
func TestMetricsDocumented(t *testing.T) {
	doc, err := os.ReadFile("../../OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("OBSERVABILITY.md must ship with the daemon: %v", err)
	}
	// The registry's contents depend on the datapath (the CICQ engine
	// adds its cicq_* instruments), so the documented set is diffed
	// against the union over both organizations.
	// ... and a flow-enabled engine adds the lcf_flow_* tier.
	registered := newTestServer(t, 64).registry.Names()
	registered = append(registered, newTestServerDP(t, 64, datapath.CICQ).registry.Names()...)
	registered = append(registered, newTestServerFlows(t, 1024, "po2").registry.Names()...)
	// ... and a class-enabled engine adds the lcf_class_* tier.
	registered = append(registered, newTestServerClasses(t, "deadline").registry.Names()...)

	// Documented names are backticked `lcf_*`/`cicq_*` tokens. Histogram
	// series suffixes (_bucket/_sum/_count) and label-carrying examples
	// refer to a base metric and are not names of their own.
	re := regexp.MustCompile("`((?:lcf|cicq)_[a-z0-9_]+)`")
	documented := map[string]bool{}
	for _, m := range re.FindAllStringSubmatch(string(doc), -1) {
		name := m[1]
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			name = strings.TrimSuffix(name, suffix)
		}
		documented[name] = true
	}
	if len(documented) == 0 {
		t.Fatal("OBSERVABILITY.md documents no `lcf_*` metrics")
	}

	regSet := map[string]bool{}
	for _, name := range registered {
		regSet[name] = true
		if !documented[name] {
			t.Errorf("metric %s is registered but not documented in OBSERVABILITY.md", name)
		}
	}
	var stale []string
	for name := range documented {
		if !regSet[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(stale)
	for _, name := range stale {
		t.Errorf("OBSERVABILITY.md documents %s, which no longer exists in the registry", name)
	}
}
