// Command lcfflow runs the flow-steering study (EXPERIMENTS.md E31):
// the live lockstep engine under Zipf-skewed flow traffic, with each
// steering policy of internal/flowtable driven through the identical
// arrival sequence so the columns differ only in where new flows land.
// Per policy it reports delivered frames, mean queuing delay, the
// per-input backlog imbalance (max/mean over inputs, averaged over
// measured slots — the quantity po2 exists to minimize), the peak
// single-input backlog, and the Jain fairness index over per-port flow
// counts.
//
// Usage:
//
//	lcfflow -flows 100000 -skew 1.1 -seed 42
//	lcfflow -n 8 -flows 1000000 -load 0.95 -policies hash,po2 -csv
//
// All runs are deterministic for a given -seed: the arrival stream is
// regenerated from the same PCG32 streams for every policy.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/flowtable"
	"repro/internal/rng"
	rt "repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/sched/registry"
	"repro/internal/traffic"
)

// studyConfig parameterizes one E31 sweep.
type studyConfig struct {
	N         int
	Flows     int // concurrent flow population (table capacity is 2×)
	Skew      float64
	Load      float64
	Warmup    int64
	Measure   int64
	Policies  []string
	Scheduler string
	Seed      uint64
	// EvictEvery/Idle drive the same idle-eviction epoch clock lcfd runs:
	// every EvictEvery slots the epoch advances and flows idle for more
	// than Idle epochs are evicted. Churn is what separates the policies —
	// an evicted mouse's next frame is a fresh steering decision against
	// live backlogs, so adaptive policies keep correcting while hash
	// re-picks the same port forever. 0 disables eviction.
	EvictEvery int64
	Idle       uint32
}

// row is one policy's measured line.
type row struct {
	Policy     string
	Delivered  int64   // frames consumed during the measured window
	Throughput float64 // delivered / (n × measured slots)
	MeanDelay  float64 // queuing delay in slots, measured deliveries
	Imbalance  float64 // mean over slots of max/mean per-input backlog
	MaxBacklog int64   // peak single-input VOQ backlog
	PortJain   float64 // Jain index over per-port resident-flow counts
	Resident   int64   // flows resident at shutdown
	Rejected   int64   // AdmitFlow refusals (table full)
}

// runPolicy drives one policy through warmup+measure lockstep slots.
// Every policy sees the identical arrival sequence: the Zipf and
// admission RNG streams are re-seeded per run, and the flow table's own
// seed is fixed, so the only degree of freedom is the steering decision.
func runPolicy(cfg studyConfig, policy string) (row, error) {
	r := row{Policy: policy}
	sch, err := registry.New(cfg.Scheduler, cfg.N, sched.Options{Iterations: 4, Seed: cfg.Seed})
	if err != nil {
		return r, err
	}
	e, err := rt.New(rt.Config{
		N:         cfg.N,
		Scheduler: sch,
		// 2× headroom: the study measures steering quality, not table
		// sizing, so the population must fit without rejections.
		Flows:      2 * cfg.Flows,
		FlowPolicy: policy,
		FlowSeed:   cfg.Seed,
	})
	if err != nil {
		return r, err
	}
	defer e.Close()

	zipf := traffic.NewZipf(cfg.Flows, cfg.Skew, cfg.Seed^0xE31)
	admit := rng.NewPCG32(cfg.Seed, 0xE31)
	st := e.Stats()
	var seq uint64
	var delaySum float64
	total := cfg.Warmup + cfg.Measure
	for slot := int64(0); slot < total; slot++ {
		for k := 0; k < cfg.N; k++ {
			if !admit.Bool(cfg.Load) {
				continue
			}
			id := uint64(zipf.Next())
			dst := admit.Intn(cfg.N)
			seq++
			switch _, aerr := e.AdmitFlow(id, dst, seq, 0); {
			case aerr == nil:
			case errors.Is(aerr, rt.ErrBackpressure):
			case errors.Is(aerr, flowtable.ErrTableFull):
				r.Rejected++
			default:
				return r, fmt.Errorf("policy %s: slot %d: AdmitFlow: %v", policy, slot, aerr)
			}
		}
		e.Tick()
		if cfg.EvictEvery > 0 && (slot+1)%cfg.EvictEvery == 0 {
			e.AdvanceFlowEpoch()
			e.EvictIdleFlows(cfg.Idle)
		}
		for j := 0; j < cfg.N; j++ {
			for {
				select {
				case f := <-e.Output(j):
					if slot >= cfg.Warmup {
						r.Delivered++
						delaySum += float64(f.Departed - f.Admitted)
					}
					continue
				default:
				}
				break
			}
		}
		if slot >= cfg.Warmup {
			var tot, max int64
			for p := 0; p < cfg.N; p++ {
				v := st.PerInputBacklog[p].Value()
				tot += v
				if v > max {
					max = v
				}
			}
			if v := max; v > r.MaxBacklog {
				r.MaxBacklog = v
			}
			if tot > 0 {
				r.Imbalance += float64(max) * float64(cfg.N) / float64(tot)
			} else {
				r.Imbalance++ // idle slot: perfectly even by definition
			}
		}
	}
	if r.Delivered > 0 {
		r.MeanDelay = delaySum / float64(r.Delivered)
	}
	r.Throughput = float64(r.Delivered) / float64(cfg.N) / float64(cfg.Measure)
	r.Imbalance /= float64(cfg.Measure)
	// Jain over per-port resident-flow counts: 1 means every input hosts
	// the same number of flows. (Fairness.Jain itself is per-flow service,
	// which the Zipf popularity dominates identically for every policy.)
	fair := e.Flows().Fairness()
	var sum, sumSq float64
	for _, c := range fair.FlowsPerPort {
		sum += float64(c)
		sumSq += float64(c) * float64(c)
	}
	if sumSq > 0 {
		r.PortJain = sum * sum / (float64(len(fair.FlowsPerPort)) * sumSq)
	}
	r.Resident = e.Flows().Resident()
	return r, nil
}

// runStudy sweeps every requested policy over the same arrival sequence.
func runStudy(cfg studyConfig) ([]row, error) {
	rows := make([]row, 0, len(cfg.Policies))
	for _, policy := range cfg.Policies {
		r, err := runPolicy(cfg, policy)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

func main() {
	var (
		n          = flag.Int("n", 16, "switch port count")
		flows      = flag.Int("flows", 100_000, "flow-id population (steering table is sized 2x)")
		skew       = flag.Float64("skew", 0.8, "Zipf popularity exponent (0 = uniform)")
		load       = flag.Float64("load", 0.7, "offered load per port")
		warmup     = flag.Int64("warmup", 3_000, "warmup slots (not measured)")
		measure    = flag.Int64("measure", 10_000, "measured slots")
		policies   = flag.String("policies", strings.Join(flowtable.Names(), ","), "comma-separated steering policies to compare")
		evictEvery = flag.Int64("evict-every", 64, "advance the idle-eviction epoch every this many slots (0 = never evict)")
		idle       = flag.Uint("idle", 2, "evict flows idle for more than this many epochs")
		schedN     = flag.String("scheduler", "lcf_central_rr", "sched registry name for the crossbar scheduler")
		seed       = flag.Uint64("seed", 42, "base RNG seed")
		csv        = flag.Bool("csv", false, "emit CSV instead of an aligned table")
	)
	flag.Parse()

	if *n <= 0 {
		fatalUsage("-n must be positive (got %d)", *n)
	}
	if *flows <= 0 {
		fatalUsage("-flows must be positive (got %d)", *flows)
	}
	if *skew < 0 {
		fatalUsage("-skew must be >= 0 (got %g)", *skew)
	}
	if *load <= 0 || *load > 1 {
		fatalUsage("-load must be in (0,1] (got %g)", *load)
	}
	if *warmup < 0 || *measure <= 0 {
		fatalUsage("-warmup must be >= 0 and -measure positive (got %d, %d)", *warmup, *measure)
	}
	if *evictEvery < 0 {
		fatalUsage("-evict-every must be >= 0 (got %d)", *evictEvery)
	}
	cfg := studyConfig{
		N: *n, Flows: *flows, Skew: *skew, Load: *load,
		Warmup: *warmup, Measure: *measure,
		Policies: strings.Split(*policies, ","), Scheduler: *schedN, Seed: *seed,
		EvictEvery: *evictEvery, Idle: uint32(*idle),
	}
	for _, p := range cfg.Policies {
		if _, err := flowtable.NewPolicy(p); err != nil {
			fatalUsage("-policies: %v", err)
		}
	}

	rows, err := runStudy(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lcfflow: %v\n", err)
		os.Exit(1)
	}
	if *csv {
		fmt.Println("policy,delivered,throughput,mean_delay,backlog_imbalance,max_backlog,port_jain,resident,rejected")
		for _, r := range rows {
			fmt.Printf("%s,%d,%.4f,%.3f,%.3f,%d,%.4f,%d,%d\n",
				r.Policy, r.Delivered, r.Throughput, r.MeanDelay, r.Imbalance, r.MaxBacklog, r.PortJain, r.Resident, r.Rejected)
		}
		return
	}
	fmt.Printf("E31 — flow steering: per-input backlog imbalance and delay per policy\n")
	fmt.Printf("(n=%d, %d flows zipf(%g), load %.2f, warmup %d, measured %d slots, scheduler %s, seed %d)\n\n",
		cfg.N, cfg.Flows, cfg.Skew, cfg.Load, cfg.Warmup, cfg.Measure, cfg.Scheduler, cfg.Seed)
	fmt.Printf("%-8s %10s %8s %12s %12s %12s %8s %10s %10s\n",
		"policy", "delivered", "thrpt", "mean delay", "max/mean bl", "max backlog", "port jain", "resident", "rejected")
	for _, r := range rows {
		fmt.Printf("%-8s %10d %8.4f %12.3f %12.3f %12d %8.4f %10d %10d\n",
			r.Policy, r.Delivered, r.Throughput, r.MeanDelay, r.Imbalance, r.MaxBacklog, r.PortJain, r.Resident, r.Rejected)
	}
}

// fatalUsage exits with status 2, the conventional code for command-line
// usage errors.
func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lcfflow: "+format+"\n", args...)
	os.Exit(2)
}
