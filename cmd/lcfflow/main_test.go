package main

import (
	"errors"
	"os/exec"
	"path/filepath"
	"testing"
)

func studyCfg() studyConfig {
	return studyConfig{
		N: 8, Flows: 8192, Skew: 0.8, Load: 0.7,
		Warmup: 500, Measure: 1500,
		Policies: []string{"hash", "least", "po2"}, Scheduler: "lcf_central_rr",
		Seed: 42, EvictEvery: 64, Idle: 2,
	}
}

// TestStudyPo2BeatsHash pins the E31 headline on a deterministic,
// test-sized run: under skewed flow traffic in a stable regime, po2
// steering yields measurably lower max/mean per-input backlog imbalance
// and a lower peak single-input backlog than consistent hashing, at the
// same delivered throughput.
func TestStudyPo2BeatsHash(t *testing.T) {
	rows, err := runStudy(studyCfg())
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[string]row{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
	}
	hash, po2 := byPolicy["hash"], byPolicy["po2"]
	if hash.Policy == "" || po2.Policy == "" {
		t.Fatalf("missing policies in %+v", rows)
	}
	if po2.Imbalance >= hash.Imbalance {
		t.Errorf("po2 imbalance %.3f not below hash's %.3f", po2.Imbalance, hash.Imbalance)
	}
	if po2.MaxBacklog >= hash.MaxBacklog {
		t.Errorf("po2 peak backlog %d not below hash's %d", po2.MaxBacklog, hash.MaxBacklog)
	}
	for _, r := range rows {
		// Stable regime: every policy delivers the offered load, so the
		// imbalance comparison is not confounded by throughput loss.
		if r.Throughput < 0.95*0.7 {
			t.Errorf("%s throughput %.4f collapsed below offered load", r.Policy, r.Throughput)
		}
		if r.Rejected != 0 {
			t.Errorf("%s rejected %d admissions — table sized too small for the study", r.Policy, r.Rejected)
		}
	}
}

// TestStudyDeterminism pins that the whole sweep is replayable: same
// seed, same rows, bit for bit.
func TestStudyDeterminism(t *testing.T) {
	a, err := runStudy(studyCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := runStudy(studyCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d diverged across equal seeds:\n a = %+v\n b = %+v", i, a[i], b[i])
		}
	}
}

// TestUsageErrorsExitTwo pins the exit-code contract shared by every
// command in this repo: invalid flags exit 2, not 1.
func TestUsageErrorsExitTwo(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "lcfflow")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building lcfflow: %v\n%s", err, out)
	}
	for _, args := range [][]string{
		{"-n", "0"},
		{"-flows", "0"},
		{"-skew", "-1"},
		{"-load", "1.5"},
		{"-measure", "0"},
		{"-policies", "nonexistent"},
		{"-evict-every", "-1"},
	} {
		err := exec.Command(bin, args...).Run()
		var ee *exec.ExitError
		if !errors.As(err, &ee) || ee.ExitCode() != 2 {
			t.Errorf("lcfflow %v: %v, want exit status 2", args, err)
		}
	}
}
