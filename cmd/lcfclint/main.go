// Command lcfclint simulates the Clint interconnect of Section 4 end to
// end: sixteen hosts exchanging CRC-protected configuration/grant packets
// with the bulk LCF scheduler every slot, framed bulk data with negative
// acknowledgments and retransmission, and the best-effort quick channel
// with stop-and-wait reliability on top.
//
// Usage:
//
//	lcfclint -slots 20000 -load 0.7
//	lcfclint -corrupt 0.02 -datacorrupt 0.05    # error injection
//	lcfclint -quickload 0.4 -timeout 4          # quick-channel transport
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/clint"
)

func main() {
	var (
		slots       = flag.Int("slots", 20000, "slots to simulate")
		load        = flag.Float64("load", 0.7, "bulk-channel offered load per host")
		voqCap      = flag.Int("voqcap", 256, "per-destination VOQ capacity")
		seed        = flag.Uint64("seed", 1, "RNG seed")
		corrupt     = flag.Float64("corrupt", 0, "configuration-frame corruption probability")
		dataCorrupt = flag.Float64("datacorrupt", 0, "bulk-data-frame corruption probability")
		quickLoad   = flag.Float64("quickload", 0.3, "quick-channel offered load per host")
		timeout     = flag.Int("timeout", 4, "quick transport retransmission timeout [slots]")
	)
	flag.Parse()

	fmt.Printf("Clint cluster: %d hosts, %d slots, bulk load %.2f, quick load %.2f\n\n",
		clint.NumPorts, *slots, *load, *quickLoad)

	// ---- Bulk channel ---------------------------------------------------
	c := clint.NewCluster(*load, *voqCap, *seed)
	c.CorruptRate = *corrupt
	c.DataCorruptRate = *dataCorrupt
	for s := 0; s < *slots; s++ {
		if err := c.Step(); err != nil {
			fmt.Fprintf(os.Stderr, "lcfclint: %v\n", err)
			os.Exit(1)
		}
	}
	var crcSeen int64
	for _, h := range c.Hosts {
		crcSeen += h.CRCErrSeen
	}
	fmt.Printf("bulk channel (LCF-scheduled, 3-stage pipeline):\n")
	fmt.Printf("  delivered:        %d cells (%.3f per host-slot)\n",
		c.Delivered, float64(c.Delivered)/float64(*slots*clint.NumPorts))
	fmt.Printf("  mean delay:       %.2f slots (generation → acknowledgment)\n", c.MeanDelay())
	fmt.Printf("  backlog at end:   %d cells\n", c.Backlog())
	fmt.Printf("  drops (VOQ full): %d\n", c.DroppedFull)
	fmt.Printf("  cfg CRC errors:   %d flagged in grant packets\n", crcSeen)
	fmt.Printf("  data NACKs:       %d (%d retransmissions)\n", c.NACKs, c.Retransmissions)
	fmt.Printf("  scheduler cycles: %d clock cycles total (5n+3 per slot)\n\n",
		c.Bulk.HW().TotalCycles)

	// ---- Quick channel --------------------------------------------------
	qn := clint.NewQuickNetwork(*quickLoad, *timeout, *seed+1)
	for s := 0; s < *slots; s++ {
		qn.Step()
	}
	var sent, delivered, retries int64
	for _, tr := range qn.Transports {
		sent += tr.Stats.Sent
		delivered += tr.Stats.Delivered
		retries += tr.Stats.Retries
	}
	fmt.Printf("quick channel (best effort + stop-and-wait transport):\n")
	fmt.Printf("  messages sent:    %d (%d delivered, %d outstanding)\n",
		sent, delivered, sent-delivered)
	fmt.Printf("  retransmissions:  %d (%.1f%% of sends)\n",
		retries, 100*float64(retries)/float64(sent))
	fmt.Printf("  duplicates seen:  %d (suppressed by sequence numbers)\n",
		qn.DuplicateDeliveries)
}
