// Command lcfclass runs the service-class study (EXPERIMENTS.md E32):
// the live lockstep engine under a deterministic three-class traffic
// trace with a link-fault window in the middle, with each PIFO rank
// function driven through the identical trace so the columns differ
// only in how the class tier orders frames. Per rank × {fault-free,
// faulted} it reports, per class, delivered frames, exact p50/p99
// delivery latency in slots, and SLO violations.
//
// The headline E32 pins: under deadline ranking the real-time class
// rides through the fault window — its PIFO residency is near zero
// (urgent frames overtake everything), so the fault strands almost no
// rt frames and the post-recovery backlog drains around them — while
// under fifo ranking rt frames queue behind bulk in arrival order and
// absorb the full recovery transient.
//
// Usage:
//
//	lcfclass -seed 42
//	lcfclass -n 8 -load 0.92 -slots 6000 -ranks fifo,deadline -csv
//
// All runs are deterministic for a given -seed: the arrival trace and
// class labels are generated once (internal/traffic trace replay) and
// every rank replays the same tables.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/pifo"
	"repro/internal/rng"
	rt "repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/sched/registry"
	"repro/internal/traffic"
)

// studyConfig parameterizes one E32 sweep.
type studyConfig struct {
	N         int
	Slots     int64 // trace length; the run drains past it
	Load      float64
	Classes   string // pifo.ParseClasses spec
	Mix       []float64
	Ranks     []string
	Scheduler string
	Seed      uint64
	ClassQCap int
	// The fault window: outputs 0..FaultPorts-1 fail at FaultStart and
	// recover FaultLen slots later. Admissions to a down output are
	// rejected at the door; frames already queued strand (the study
	// holds them — HoldStranded) and drain after recovery.
	FaultStart, FaultLen int64
	FaultPorts           int
}

// classRow is one class's measured line within a run.
type classRow struct {
	Class      string
	Delivered  int64
	P50, P99   int64 // exact latency quantiles in slots, over all deliveries
	Violations int64
}

// run is one (rank, faulted?) replay of the shared trace.
type run struct {
	Rank          string
	Faulted       bool
	Classes       []classRow
	Rejected      int64 // admissions refused while their link was down
	Backpressured int64
}

// buildTrace generates the shared arrival and class tables once:
// Bernoulli-uniform arrivals recorded into a dense table (replayed via
// traffic.NewTrace), and a class label per arrival drawn from the mix
// on an independent stream. Every rank replays these bit-identically.
func buildTrace(cfg studyConfig) (arrivals, classTab [][]int) {
	gen := traffic.NewBernoulli(cfg.N, cfg.Load, traffic.NewUniform(cfg.N), cfg.Seed^0xE32)
	classRng := rng.NewPCG32(cfg.Seed, 0xC1A55)
	var cum []float64
	var total float64
	for _, w := range cfg.Mix {
		total += w
		cum = append(cum, total)
	}
	arrivals = make([][]int, cfg.Slots)
	classTab = make([][]int, cfg.Slots)
	for t := int64(0); t < cfg.Slots; t++ {
		arow := make([]int, cfg.N)
		crow := make([]int, cfg.N)
		for i := 0; i < cfg.N; i++ {
			arow[i] = gen.Next(i)
			crow[i] = len(cum) - 1
			if arow[i] == traffic.NoPacket {
				continue
			}
			r := classRng.Float64() * total
			for c, b := range cum {
				if r < b {
					crow[i] = c
					break
				}
			}
		}
		gen.Advance()
		arrivals[t] = arow
		classTab[t] = crow
	}
	return arrivals, classTab
}

// runRank replays the shared trace against one rank function, with or
// without the fault window, and reports exact per-class latency
// quantiles over every delivered frame (including the drain past the
// trace end — the late frames are the ones the study is about).
func runRank(cfg studyConfig, rank string, faulted bool, arrivals, classTab [][]int) (run, error) {
	r := run{Rank: rank, Faulted: faulted}
	classes, err := pifo.ParseClasses(cfg.Classes)
	if err != nil {
		return r, err
	}
	sch, err := registry.New(cfg.Scheduler, cfg.N, sched.Options{Iterations: 4, Seed: cfg.Seed})
	if err != nil {
		return r, err
	}
	e, err := rt.New(rt.Config{
		N:           cfg.N,
		Scheduler:   sch,
		FaultPolicy: rt.HoldStranded,
		Classes:     classes,
		Rank:        rank,
		ClassQCap:   cfg.ClassQCap,
	})
	if err != nil {
		return r, err
	}
	defer e.Close()

	gen := traffic.NewTrace(cfg.N, arrivals)
	st := e.Stats()
	lat := make([][]int64, len(classes))
	var seq uint64
	// The run continues past the trace until the switch is empty, so
	// stranded frames' latencies are measured, not lost. The cap only
	// guards against a wedged engine; a healthy drain is much shorter.
	maxSlots := 2*cfg.Slots + cfg.FaultLen
	for slot := int64(0); slot < maxSlots; slot++ {
		if faulted {
			if slot == cfg.FaultStart {
				for p := 0; p < cfg.FaultPorts; p++ {
					if err := e.FailOutput(p); err != nil {
						return r, err
					}
				}
			}
			if slot == cfg.FaultStart+cfg.FaultLen {
				for p := 0; p < cfg.FaultPorts; p++ {
					if err := e.RecoverOutput(p); err != nil {
						return r, err
					}
				}
			}
		}
		if slot < cfg.Slots {
			for i := 0; i < cfg.N; i++ {
				dst := gen.Next(i)
				if dst == traffic.NoPacket {
					continue
				}
				seq++
				switch aerr := e.AdmitClass(i, dst, classTab[slot][i], seq, 0, 0); {
				case aerr == nil:
				case errors.Is(aerr, rt.ErrBackpressure):
					r.Backpressured++
				case errors.Is(aerr, rt.ErrPortDown) && faulted:
					r.Rejected++
				default:
					return r, fmt.Errorf("rank %s: slot %d: AdmitClass: %v", rank, slot, aerr)
				}
			}
			gen.Advance()
		}
		e.Tick()
		for j := 0; j < cfg.N; j++ {
			for {
				select {
				case f := <-e.Output(j):
					lat[f.Class] = append(lat[f.Class], f.Departed-f.Admitted)
					continue
				default:
				}
				break
			}
		}
		if slot >= cfg.Slots && st.Backlog.Value() == 0 {
			break
		}
	}
	if st.Backlog.Value() != 0 {
		return r, fmt.Errorf("rank %s: %d frames still resident after the drain cap", rank, st.Backlog.Value())
	}

	r.Classes = make([]classRow, len(classes))
	for c, cl := range classes {
		sort.Slice(lat[c], func(a, b int) bool { return lat[c][a] < lat[c][b] })
		r.Classes[c] = classRow{
			Class:      cl.Name,
			Delivered:  int64(len(lat[c])),
			P50:        quantile(lat[c], 0.50),
			P99:        quantile(lat[c], 0.99),
			Violations: e.ClassViolations(c),
		}
	}
	return r, nil
}

// quantile returns the exact q-quantile of sorted samples (0 when empty).
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// runStudy sweeps every requested rank over the same trace, fault-free
// and faulted.
func runStudy(cfg studyConfig) ([]run, error) {
	arrivals, classTab := buildTrace(cfg)
	runs := make([]run, 0, 2*len(cfg.Ranks))
	for _, rank := range cfg.Ranks {
		for _, faulted := range []bool{false, true} {
			r, err := runRank(cfg, rank, faulted, arrivals, classTab)
			if err != nil {
				return nil, err
			}
			runs = append(runs, r)
		}
	}
	return runs, nil
}

func main() {
	var (
		n          = flag.Int("n", 8, "switch port count")
		slots      = flag.Int64("slots", 6_000, "trace length in slots (the run drains past it)")
		load       = flag.Float64("load", 0.92, "offered load per input")
		classSpec  = flag.String("classes", "rt:0:4:16,std:1:2:64,bulk:2:1", "class spec (name:priority:weight:slo,...)")
		mixSpec    = flag.String("mix", "2,3,5", "per-class traffic weights by class index")
		ranks      = flag.String("ranks", strings.Join(pifo.Names(), ","), "comma-separated rank functions to compare")
		schedN     = flag.String("scheduler", "lcf_central_rr", "sched registry name for the crossbar scheduler")
		seed       = flag.Uint64("seed", 42, "base RNG seed")
		classQCap  = flag.Int("classqcap", 0, "per-(input,output) PIFO bound (0 = runtime default)")
		faultStart = flag.Int64("fault-start", 2_000, "slot at which the fault window opens")
		faultLen   = flag.Int64("fault-len", 600, "fault window length in slots")
		faultPorts = flag.Int("fault-ports", 3, "outputs 0..k-1 down during the window")
		csv        = flag.Bool("csv", false, "emit CSV instead of an aligned table")
	)
	flag.Parse()

	if *n <= 0 {
		fatalUsage("-n must be positive (got %d)", *n)
	}
	if *slots <= 0 {
		fatalUsage("-slots must be positive (got %d)", *slots)
	}
	if *load <= 0 || *load > 1 {
		fatalUsage("-load must be in (0,1] (got %g)", *load)
	}
	if *classQCap < 0 {
		fatalUsage("-classqcap must be >= 0 (got %d)", *classQCap)
	}
	if *faultStart < 0 || *faultLen < 0 {
		fatalUsage("-fault-start and -fault-len must be >= 0")
	}
	if *faultPorts < 0 || *faultPorts >= *n {
		fatalUsage("-fault-ports must be in [0, n) (got %d)", *faultPorts)
	}
	classes, err := pifo.ParseClasses(*classSpec)
	if err != nil {
		fatalUsage("-classes: %v", err)
	}
	mix, err := parseMix(*mixSpec, len(classes))
	if err != nil {
		fatalUsage("-mix: %v", err)
	}
	cfg := studyConfig{
		N: *n, Slots: *slots, Load: *load,
		Classes: *classSpec, Mix: mix,
		Ranks: strings.Split(*ranks, ","), Scheduler: *schedN, Seed: *seed,
		ClassQCap:  *classQCap,
		FaultStart: *faultStart, FaultLen: *faultLen, FaultPorts: *faultPorts,
	}
	for _, rk := range cfg.Ranks {
		if _, err := pifo.NewRanker(rk, classes); err != nil {
			fatalUsage("-ranks: %v", err)
		}
	}

	runs, err := runStudy(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lcfclass: %v\n", err)
		os.Exit(1)
	}
	if *csv {
		fmt.Println("rank,faulted,class,delivered,p50,p99,slo_violations")
		for _, r := range runs {
			for _, c := range r.Classes {
				fmt.Printf("%s,%t,%s,%d,%d,%d,%d\n", r.Rank, r.Faulted, c.Class, c.Delivered, c.P50, c.P99, c.Violations)
			}
		}
		return
	}
	fmt.Printf("E32 — service classes: per-class latency under a link-fault window, per rank\n")
	fmt.Printf("(n=%d, classes %s, mix %s, load %.2f, %d trace slots, outputs 0-%d down slots %d-%d, scheduler %s, seed %d)\n\n",
		cfg.N, cfg.Classes, *mixSpec, cfg.Load, cfg.Slots, cfg.FaultPorts-1,
		cfg.FaultStart, cfg.FaultStart+cfg.FaultLen, cfg.Scheduler, cfg.Seed)
	fmt.Printf("%-10s %-7s %-6s %10s %8s %8s %10s\n",
		"rank", "faults", "class", "delivered", "p50", "p99", "violations")
	for _, r := range runs {
		window := "none"
		if r.Faulted {
			window = "window"
		}
		for _, c := range r.Classes {
			fmt.Printf("%-10s %-7s %-6s %10d %8d %8d %10d\n",
				r.Rank, window, c.Class, c.Delivered, c.P50, c.P99, c.Violations)
		}
	}
}

// parseMix parses the -mix weights and checks them against the class
// count (a light-weight sibling of lcfload's -class-mix parser; the
// study knows its class count up front, so length is validated here).
func parseMix(spec string, classes int) ([]float64, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != classes {
		return nil, fmt.Errorf("mix names %d classes, spec has %d", len(parts), classes)
	}
	ws := make([]float64, len(parts))
	var sum float64
	for i, p := range parts {
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%g", &ws[i]); err != nil {
			return nil, fmt.Errorf("mix entry %q: %v", p, err)
		}
		if ws[i] < 0 {
			return nil, fmt.Errorf("mix entry %q: weight must be >= 0", p)
		}
		sum += ws[i]
	}
	if sum <= 0 {
		return nil, fmt.Errorf("mix weights sum to zero")
	}
	return ws, nil
}

// fatalUsage exits with status 2, the conventional code for command-line
// usage errors.
func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lcfclass: "+format+"\n", args...)
	os.Exit(2)
}
