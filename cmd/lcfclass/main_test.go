package main

import (
	"errors"
	"os/exec"
	"path/filepath"
	"testing"
)

func studyCfg() studyConfig {
	return studyConfig{
		N: 8, Slots: 2_500, Load: 0.96,
		Classes:   "rt:0:4:16,std:1:2:64,bulk:2:1",
		Mix:       []float64{2, 3, 5},
		Ranks:     []string{"fifo", "deadline"},
		Scheduler: "lcf_central_rr", Seed: 42,
		FaultStart: 1_200, FaultLen: 600, FaultPorts: 4,
	}
}

func classOf(t *testing.T, r run, name string) classRow {
	t.Helper()
	for _, c := range r.Classes {
		if c.Class == name {
			return c
		}
	}
	t.Fatalf("class %s missing from run %+v", name, r)
	return classRow{}
}

// TestStudyDeadlineHoldsRealtimeP99 pins the E32 headline on a
// deterministic, test-sized run: with half the outputs failed for 600
// mid-trace slots, deadline ranking keeps the real-time class's p99
// delivery latency within 2× of its own fault-free run — the fault's
// stranded backlog drains around rt, whose PIFO residency the ranking
// keeps near zero — while the fifo baseline leaves rt queued in arrival
// order at more than 2× the protected figure, and bulk absorbs the
// degradation (its p99 under deadline is the worst in the table).
func TestStudyDeadlineHoldsRealtimeP99(t *testing.T) {
	runs, err := runStudy(studyCfg())
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]run{}
	for _, r := range runs {
		key := r.Rank
		if r.Faulted {
			key += "+fault"
		}
		byKey[key] = r
	}
	dlClean := classOf(t, byKey["deadline"], "rt")
	dlFault := classOf(t, byKey["deadline+fault"], "rt")
	fifoFault := classOf(t, byKey["fifo+fault"], "rt")

	// The protection claim: rt p99 rides through the fault window.
	if dlFault.P99 > 2*dlClean.P99 {
		t.Errorf("deadline rt p99 %d blew past 2x its fault-free %d", dlFault.P99, dlClean.P99)
	}
	// The baseline does not protect: fifo's faulted rt p99 is beyond
	// twice what deadline ranking delivers under the same faults.
	if fifoFault.P99 <= 2*dlFault.P99 {
		t.Errorf("fifo rt p99 %d not beyond 2x deadline's %d — baseline unexpectedly protective", fifoFault.P99, dlFault.P99)
	}
	// Someone pays: bulk under deadline absorbs the latency rt sheds.
	dlBulk := classOf(t, byKey["deadline+fault"], "bulk")
	fifoBulk := classOf(t, byKey["fifo+fault"], "bulk")
	if dlBulk.P99 <= fifoBulk.P99 {
		t.Errorf("deadline bulk p99 %d not above fifo's %d — protection came from nowhere", dlBulk.P99, fifoBulk.P99)
	}
	// And the SLO ledger agrees with the latency table.
	if dlFault.Violations >= fifoFault.Violations {
		t.Errorf("deadline rt violations %d not below fifo's %d", dlFault.Violations, fifoFault.Violations)
	}
	// Identical trace: delivered counts per class match across ranks.
	if dlFault.Delivered != fifoFault.Delivered {
		t.Errorf("ranks saw different traffic: deadline delivered %d, fifo %d", dlFault.Delivered, fifoFault.Delivered)
	}
}

// TestStudyDeterminism pins that the whole sweep is replayable: same
// seed, same runs.
func TestStudyDeterminism(t *testing.T) {
	a, err := runStudy(studyCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := runStudy(studyCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Rank != b[i].Rank || a[i].Rejected != b[i].Rejected || len(a[i].Classes) != len(b[i].Classes) {
			t.Fatalf("run %d diverged across equal seeds:\n a = %+v\n b = %+v", i, a[i], b[i])
		}
		for c := range a[i].Classes {
			if a[i].Classes[c] != b[i].Classes[c] {
				t.Fatalf("run %d class %d diverged:\n a = %+v\n b = %+v", i, c, a[i].Classes[c], b[i].Classes[c])
			}
		}
	}
}

// TestUsageErrorsExitTwo pins the exit-code contract shared by every
// command in this repo: invalid flags exit 2, not 1.
func TestUsageErrorsExitTwo(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "lcfclass")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building lcfclass: %v\n%s", err, out)
	}
	for _, args := range [][]string{
		{"-n", "0"},
		{"-slots", "0"},
		{"-load", "1.5"},
		{"-classes", "bad:x"},
		{"-mix", "1,2"},
		{"-ranks", "nonexistent"},
		{"-fault-ports", "8"},
		{"-classqcap", "-1"},
	} {
		err := exec.Command(bin, args...).Run()
		var ee *exec.ExitError
		if !errors.As(err, &ee) || ee.ExitCode() != 2 {
			t.Errorf("lcfclass %v: %v, want exit status 2", args, err)
		}
	}
}
