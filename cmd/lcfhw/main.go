// Command lcfhw regenerates the implementation-cost side of the paper's
// evaluation: Table 1 (gate and register counts of the central LCF
// scheduler), Table 2 (scheduling-task cycle counts and times at 66 MHz),
// and the Section 6.2 communication-cost comparison between the central
// and distributed schedulers.
//
// Usage:
//
//	lcfhw -table 1            # Table 1 at n=16 (the published design)
//	lcfhw -table 2 -n 32      # cycle decomposition for a 32-port design
//	lcfhw -table comm         # signalling bits, central vs distributed
//	lcfhw -table scaling      # Table 1 model across port counts
package main

import (
	"flag"
	"fmt"
	"os"

	lcf "repro"
)

func main() {
	var (
		table = flag.String("table", "1", "which table: 1, 2, comm, scaling")
		n     = flag.Int("n", 16, "switch port count")
		clock = flag.Float64("clock", lcf.ClockHz, "scheduler clock in Hz")
		iters = flag.Int("iterations", 4, "iterations for the distributed comm cost")
	)
	flag.Parse()

	switch *table {
	case "1":
		printTable1(*n)
	case "2":
		printTable2(*n, *clock)
	case "comm":
		printComm(*iters)
	case "scaling":
		printScaling()
	case "pins":
		printPins(*iters)
	case "arbiters":
		printArbiters(*n, *iters)
	default:
		fmt.Fprintf(os.Stderr, "lcfhw: unknown -table %q\n", *table)
		os.Exit(1)
	}
}

func printTable1(n int) {
	t := lcf.HardwareCostTable1(n)
	fmt.Printf("Table 1 — gate and register counts of the LCF scheduler (n=%d)\n\n", n)
	fmt.Printf("%-12s %18s %10s %10s\n", "", "Distributed", "Central", "Total")
	fmt.Printf("%-12s %18s %10d %10d\n", "Gate count",
		fmt.Sprintf("%d×%d=%d", n, t.Slice.Gates, n*t.Slice.Gates), t.Central.Gates, t.TotalGates)
	fmt.Printf("%-12s %18s %10d %10d\n", "Reg. count",
		fmt.Sprintf("%d×%d=%d", n, t.Slice.Registers, n*t.Slice.Registers), t.Central.Registers, t.TotalRegs)
	if n == 16 {
		fmt.Printf("\npaper (Xilinx XCV600): 16×450=7200 / 767 / 7967 gates, 16×86=1376 / 216 / 1592 registers\n")
	}
}

func printTable2(n int, clock float64) {
	fmt.Printf("Table 2 — scheduling tasks (n=%d, %.0f MHz)\n\n", n, clock/1e6)
	fmt.Printf("%-24s %-14s %8s %10s\n", "Task", "Decomposition", "Cycles", "Time")
	for _, task := range lcf.SchedulingTasksTable2(n, clock) {
		fmt.Printf("%-24s %-14s %8d %9.0fns\n", task.Name, task.Decomposition, task.Cycles, task.Seconds*1e9)
	}
	if n == 16 && clock == lcf.ClockHz {
		fmt.Printf("\npaper: 33 / 50 / 83 cycles, 500 / 758 / 1258 ns\n")
	}
}

func printComm(iterations int) {
	fmt.Printf("Section 6.2 — communication cost per scheduling cycle [bits]\n")
	fmt.Printf("central: n(n+log2 n+1); distributed: i·n²(2·log2 n+3), i=%d\n\n", iterations)
	fmt.Printf("%-6s %14s %14s %8s\n", "n", "central", "distributed", "ratio")
	for n := 4; n <= 1024; n *= 2 {
		c := lcf.CentralCommBits(n)
		d := lcf.DistCommBits(n, iterations)
		fmt.Printf("%-6d %14d %14d %8.1f\n", n, c, d, float64(d)/float64(c))
	}
}

func printPins(iterations int) {
	fmt.Printf("Section 6.2 — modularization: scheduling signal pins per packaging option\n")
	fmt.Printf("central scheduler on the backplane vs distributed slices on the line cards\n\n")
	fmt.Printf("%-6s %18s %18s %18s %18s\n", "n",
		"central/card", "central/backplane", "dist/card", "dist/backplane")
	for n := 4; n <= 256; n *= 2 {
		p := lcf.PackagingPins(n, iterations)
		fmt.Printf("%-6d %18d %18d %18d %18d\n", n,
			p.CentralLineCardPins, p.CentralBackplanePins,
			p.DistLineCardPins, p.DistBackplanePins)
	}
	fmt.Printf("\nreading: the central option keeps line cards thin (n+log2 n+1 pins)\n")
	fmt.Printf("at the cost of centralizing all request wiring; the distributed mesh\n")
	fmt.Printf("grows per-card pins linearly and backplane wires quadratically —\n")
	fmt.Printf("Section 6.2's case for pairing the central scheduler with narrow\n")
	fmt.Printf("switches and the distributed one with bit-sliced wide fabrics.\n")
}

func printArbiters(n, iterations int) {
	fmt.Printf("Arbiter implementation comparison (n=%d)\n\n", n)
	fmt.Printf("%-16s %-28s %12s %12s %14s\n", "scheduler", "cycles/schedule", "gates", "registers", "comm bits")
	for _, r := range lcf.CompareArbiters(n, iterations) {
		fmt.Printf("%-16s %-28s %12d %12d %14d\n", r.Name, r.Cycles, r.Gates, r.Registers, r.CommBits)
	}
	fmt.Printf("\nreading: the wave front array is the fastest and cheapest arbiter but\n")
	fmt.Printf("produces the worst schedules of the three (Figure 12); the central LCF\n")
	fmt.Printf("buys the best schedules at O(n) scheduling time; the distributed LCF\n")
	fmt.Printf("drops the central chip and the O(n) time, paying in wiring — the\n")
	fmt.Printf("paper's central-for-narrow / distributed-for-wide split in one table.\n")
}

func printScaling() {
	fmt.Printf("Table 1 model across port counts (per-slice / central / total)\n\n")
	fmt.Printf("%-6s %12s %12s %12s %12s %12s %12s\n",
		"n", "slice gates", "slice regs", "centr gates", "centr regs", "total gates", "total regs")
	for n := 4; n <= 256; n *= 2 {
		t := lcf.HardwareCostTable1(n)
		fmt.Printf("%-6d %12d %12d %12d %12d %12d %12d\n",
			n, t.Slice.Gates, t.Slice.Registers, t.Central.Gates, t.Central.Registers,
			t.TotalGates, t.TotalRegs)
	}
}
