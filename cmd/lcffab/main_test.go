package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"

	cf "repro/internal/closfabric"
	rt "repro/internal/runtime"
)

// newTestDaemon builds a lockstep fabric daemon (no ticker, no listener)
// with a few slots of generated traffic already through it.
func newTestDaemon(t *testing.T, ringCap int) *daemon {
	t.Helper()
	d, err := newDaemon(cf.Config{
		M: 2, K: 2, R: 2,
		Seed:   1,
		Policy: rt.HoldStranded,
		Select: cf.SelectLeastBacklogged,
	}, 0.6, ringCap, ringCap > 0)
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 20; slot++ {
		if err := d.step(); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// TestFabricMetricsDocumented keeps OBSERVABILITY.md and the fab_*
// registry in lockstep, both directions — the fabric namespace's mirror
// of cmd/lcfd's TestMetricsDocumented for lcf_*.
func TestFabricMetricsDocumented(t *testing.T) {
	doc, err := os.ReadFile("../../OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("OBSERVABILITY.md must ship with the daemon: %v", err)
	}
	registered := newTestDaemon(t, 0).registry.Names()

	re := regexp.MustCompile("`(fab_[a-z0-9_]+)`")
	documented := map[string]bool{}
	for _, m := range re.FindAllStringSubmatch(string(doc), -1) {
		name := m[1]
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			name = strings.TrimSuffix(name, suffix)
		}
		documented[name] = true
	}
	if len(documented) == 0 {
		t.Fatal("OBSERVABILITY.md documents no `fab_*` metrics")
	}

	regSet := map[string]bool{}
	for _, name := range registered {
		regSet[name] = true
		if !documented[name] {
			t.Errorf("metric %s is registered but not documented in OBSERVABILITY.md", name)
		}
	}
	var stale []string
	for name := range documented {
		if !regSet[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(stale)
	for _, name := range stale {
		t.Errorf("OBSERVABILITY.md documents %s, which no longer exists in the registry", name)
	}
}

// TestDaemonMetricsHandlers drives the HTTP surface against a lockstep
// daemon: JSON by default, Prometheus on Accept, /fabric topology rows.
func TestDaemonMetricsHandlers(t *testing.T) {
	d := newTestDaemon(t, 64)

	rec := httptest.NewRecorder()
	d.handleMetrics(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("default Content-Type = %q", ct)
	}
	var snap snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if snap.Injected == 0 || snap.Slot == 0 {
		t.Fatalf("no traffic visible in snapshot: %+v", snap)
	}
	if snap.Injected != snap.Delivered+snap.Dropped+snap.Resident {
		t.Fatalf("snapshot books don't close: %+v", snap)
	}

	rec = httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	d.handleMetrics(rec, req)
	body := rec.Body.String()
	for _, want := range []string{"fab_injected_total", "fab_middle_live", "fab_stage_backlog_frames", "fab_latency_slots_bucket"} {
		if !strings.Contains(body, want) {
			t.Errorf("Prometheus exposition missing %s", want)
		}
	}

	rec = httptest.NewRecorder()
	d.handleFabric(rec, httptest.NewRequest(http.MethodGet, "/fabric", nil))
	var fabDoc struct {
		Switches []stageSummary `json:"switches"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &fabDoc); err != nil {
		t.Fatalf("/fabric JSON: %v", err)
	}
	if len(fabDoc.Switches) != 6 { // m + 2r for C(2,2,2)
		t.Fatalf("/fabric lists %d switches, want 6", len(fabDoc.Switches))
	}
}

// TestDaemonEndToEnd runs the real slot loop on its ticker with the HTTP
// surface attached, kills a middle switch over the wire, watches traffic
// reroute, revives it and shuts down — the full operational story,
// in-process.
func TestDaemonEndToEnd(t *testing.T) {
	d, err := newDaemon(cf.Config{
		M: 2, K: 2, R: 2,
		Seed:   7,
		Policy: rt.HoldStranded,
		Select: cf.SelectRoundRobin,
	}, 0.6, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", d.handleMetrics)
	mux.HandleFunc("/fabric", d.handleFabric)
	mux.HandleFunc("/fault", d.handleFault)
	mux.HandleFunc("/trace", d.handleTrace)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	stop := make(chan os.Signal, 1)
	runDone := make(chan error, 1)
	go func() { runDone <- d.run(50*time.Microsecond, 0, stop) }()

	getSnap := func() snapshot {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var s snapshot
		if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
			t.Fatal(err)
		}
		return s
	}
	waitFor := func(what string, cond func(snapshot) bool) snapshot {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if s := getSnap(); cond(s) {
				return s
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s (last: %+v)", what, getSnap())
		return snapshot{}
	}

	waitFor("traffic", func(s snapshot) bool { return s.Delivered > 100 })

	// Kill middle 0 over the wire; routing must shift entirely to 1.
	resp, err := http.Post(ts.URL+"/fault?middle=0&state=down", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var states []middleState
	if err := json.NewDecoder(resp.Body).Decode(&states); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || states[0].Live || !states[1].Live {
		t.Fatalf("kill response: status %d, states %+v", resp.StatusCode, states)
	}
	before := waitFor("degraded state visible", func(s snapshot) bool { return !s.MiddleLive[0] })
	routedBefore := before.Injected
	waitFor("traffic rerouted through middle 1", func(s snapshot) bool {
		return s.Injected > routedBefore+50
	})

	// Revive, then check the trace surface speaks stage-tagged JSONL.
	resp, err = http.Post(ts.URL+"/fault?middle=0&state=up", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitFor("recovery visible", func(s snapshot) bool { return s.MiddleLive[0] })

	resp, err = http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	stages := map[string]bool{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev stageEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("trace line %q: %v", sc.Text(), err)
		}
		stages[ev.Stage] = true
	}
	resp.Body.Close()
	for _, want := range []string{"ingress", "middle", "egress"} {
		if !stages[want] {
			t.Errorf("trace has no events from the %s stage (saw %v)", want, stages)
		}
	}

	stop <- os.Interrupt
	if err := <-runDone; err != nil {
		t.Fatalf("run loop: %v", err)
	}

	// The loop has stopped; the books must close exactly.
	st := d.fab.Stats()
	if st.Injected.Value() != st.Delivered.Value()+st.Dropped.Value()+d.fab.Resident() {
		t.Fatalf("final accounting broken: injected %d, delivered %d, dropped %d, resident %d",
			st.Injected.Value(), st.Delivered.Value(), st.Dropped.Value(), d.fab.Resident())
	}
}
