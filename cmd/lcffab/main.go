// Command lcffab runs a live three-stage Clos fabric: m·r·r switch
// engines (internal/closfabric) driven on one shared slot clock, with a
// built-in uniform load generator and an HTTP control surface.
//
// Unlike cmd/lcfd — one switch, TCP data plane — lcffab's data plane is
// synthetic: the generator offers Bernoulli traffic at -load across the
// k·r external ports, and the interesting surface is operational: watch
// per-stage metrics, kill and revive whole middle-stage switches at
// runtime, and observe rerouting, backpressure and (under -fault-policy
// hold) zero-loss degradation, with fabric-wide conservation audited
// every slot.
//
// Observability (see OBSERVABILITY.md for the complete reference):
//
//   - GET /metrics serves the fab_* counters — fabric totals, per-middle
//     routing and liveness, per-{stage,index} engine roll-ups — as JSON
//     by default or Prometheus text exposition 0.0.4 when the Accept
//     header asks for text/plain.
//   - GET /fabric returns the topology and per-switch summaries.
//   - GET /fault lists middle-switch liveness; POST /fault?middle=2&state=down
//     kills middle switch 2 at the next slot boundary (state=up revives).
//   - GET /trace drains every engine's slot-event ring as JSONL, each
//     line tagged with the engine's stage and index.
//
// Usage:
//
//	lcffab                                   # C(4,4,4): 16 ports, 12 switches
//	lcffab -m 8 -k 8 -r 8 -sched islip -select backlog
//	curl -X POST 'localhost:9427/fault?middle=0&state=down'
//	curl localhost:9427/metrics | jq .injected
//	curl -H 'Accept: text/plain' localhost:9427/metrics   # Prometheus
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/clint"
	cf "repro/internal/closfabric"
	"repro/internal/obs"
	"repro/internal/rng"
	rt "repro/internal/runtime"
)

func main() {
	var (
		m          = flag.Int("m", 4, "middle-stage switches")
		k          = flag.Int("k", 4, "external ports per ingress/egress switch")
		r          = flag.Int("r", 4, "ingress (= egress) switches")
		schedName  = flag.String("sched", "lcf_central_rr", "scheduler for every switch engine (see lcfsim for the list)")
		iterations = flag.Int("iterations", 4, "iterations for the iterative schedulers")
		seed       = flag.Uint64("seed", 1, "base seed; every engine derives its own via closfabric.SchedulerSeed")
		slot       = flag.Duration("slot", 200*time.Microsecond, "fabric slot period")
		slots      = flag.Int64("slots", 0, "stop after this many slots (0 runs until SIGINT/SIGTERM)")
		voqCap     = flag.Int("voqcap", 256, "per-VOQ capacity in every engine")
		outCap     = flag.Int("outcap", 256, "per-output delivery buffer in every engine")
		selName    = flag.String("select", "backlog", "middle-stage routing: rr (round-robin) or backlog (least-backlogged)")
		faultPol   = flag.String("fault-policy", "hold", "disposition of frames stranded in a failed middle switch: hold or drop")
		load       = flag.Float64("load", 0.7, "per-external-port Bernoulli offered load of the built-in generator (0 disables)")
		httpAddr   = flag.String("http", "127.0.0.1:9427", "HTTP address for metrics and fault injection (empty disables)")
		traceRing  = flag.Int("trace-ring", 1024, "per-engine slot-event trace ring capacity (0 removes tracing)")
		traceOn    = flag.Bool("trace", false, "start with slot-event tracing enabled")
	)
	flag.Parse()

	sel, err := cf.ParseMiddleSelect(*selName)
	if err != nil {
		fatalUsage("%v", err)
	}
	var policy rt.FaultPolicy
	switch *faultPol {
	case "hold":
		policy = rt.HoldStranded
	case "drop":
		policy = rt.DropStranded
	default:
		fatalUsage("-fault-policy must be hold or drop (got %q)", *faultPol)
	}
	if *slot <= 0 {
		fatalUsage("-slot must be positive (got %v)", *slot)
	}
	if *load < 0 || *load > 1 {
		fatalUsage("-load must be in [0,1] (got %g)", *load)
	}

	d, err := newDaemon(cf.Config{
		M: *m, K: *k, R: *r,
		Scheduler:  *schedName,
		Iterations: *iterations,
		Seed:       *seed,
		VOQCap:     *voqCap,
		OutCap:     *outCap,
		Policy:     policy,
		Select:     sel,
	}, *load, *traceRing, *traceOn)
	if err != nil {
		fatal("%v", err)
	}

	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", d.handleMetrics)
		mux.HandleFunc("/fabric", d.handleFabric)
		mux.HandleFunc("/fault", d.handleFault)
		mux.HandleFunc("/trace", d.handleTrace)
		go func() {
			if err := http.ListenAndServe(*httpAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "lcffab: http endpoint: %v\n", err)
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	fmt.Printf("lcffab: C(%d,%d,%d) — %d switches, %d external ports, %s/%s, slot %v",
		*m, *k, *r, *m+2**r, d.fab.N(), *schedName, sel, *slot)
	if *httpAddr != "" {
		fmt.Printf(", metrics on http://%s/metrics", *httpAddr)
	}
	fmt.Println()

	if err := d.run(*slot, *slots, stop); err != nil {
		fatal("%v", err)
	}
	st := d.fab.Stats()
	fmt.Printf("lcffab: done after %d slots: injected %d, delivered %d, dropped %d, resident %d\n",
		d.fab.Slot(), st.Injected.Value(), st.Delivered.Value(), st.Dropped.Value(), d.fab.Resident())
}

// faultOp is one middle-switch transition requested over HTTP, marshalled
// onto the tick goroutine (the fabric's mutating methods are lockstep).
type faultOp struct {
	middle int
	down   bool
	done   chan error
}

// enginePos names one engine's position for trace tagging.
type enginePos struct {
	stage uint8
	idx   int
}

// daemon owns the fabric, its registry and the tick loop plumbing.
type daemon struct {
	fab      *cf.Fabric
	registry *obs.Registry
	cfg      cf.Config
	load     float64
	gen      *rng.PCG32
	seq      uint64
	ops      chan faultOp
	started  time.Time

	tracerAt  map[enginePos]*obs.Tracer // empty map when -trace-ring 0
	positions []enginePos               // stable trace/report order
}

func newDaemon(cfg cf.Config, load float64, traceRing int, traceOn bool) (*daemon, error) {
	d := &daemon{
		cfg:      cfg,
		load:     load,
		gen:      rng.NewPCG32(cfg.Seed, 0x10AD),
		ops:      make(chan faultOp, 16),
		started:  time.Now(),
		tracerAt: make(map[enginePos]*obs.Tracer),
	}
	if traceRing > 0 {
		cfg.TracerFor = func(stage uint8, idx int) *obs.Tracer {
			size := cfg.R
			if stage != clint.StageMiddle {
				size = maxInt(cfg.K, cfg.M)
			}
			tr := obs.NewTracer(size, traceRing)
			tr.SetEnabled(traceOn)
			d.tracerAt[enginePos{stage, idx}] = tr
			d.positions = append(d.positions, enginePos{stage, idx})
			return tr
		}
	}
	fab, err := cf.New(cfg)
	if err != nil {
		return nil, err
	}
	d.fab = fab
	d.registry = d.buildRegistry()
	return d, nil
}

func (d *daemon) buildRegistry() *obs.Registry {
	r := obs.NewRegistry()
	d.fab.Register(r)
	r.Gauge("fab_uptime_seconds", "Seconds since the fabric daemon started.", func() float64 {
		return time.Since(d.started).Seconds()
	})
	return r
}

// step advances the fabric one slot: apply queued fault ops, offer
// generated load, tick. This is the whole data plane.
func (d *daemon) step() error {
	for {
		select {
		case op := <-d.ops:
			var err error
			if op.down {
				err = d.fab.FailMiddle(op.middle)
			} else {
				err = d.fab.RecoverMiddle(op.middle)
			}
			op.done <- err
			continue
		default:
		}
		break
	}
	n := d.fab.N()
	for p := 0; p < n; p++ {
		if d.load <= 0 || !d.gen.Bool(d.load) {
			continue
		}
		d.seq++
		// Backpressure and dead paths are the fabric telling the
		// generator to back off; both are counted, neither is fatal.
		_ = d.fab.Admit(p, d.gen.Intn(n), d.seq, uint64(time.Now().UnixNano()))
	}
	return d.fab.Tick()
}

// run paces step on the slot ticker until the slot budget or a signal
// stops it. A conservation violation aborts the daemon — a fabric that
// lost track of a frame has no business staying up.
func (d *daemon) run(period time.Duration, maxSlots int64, stop <-chan os.Signal) error {
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			fmt.Println("lcffab: shutting down")
			return nil
		case <-ticker.C:
			if err := d.step(); err != nil {
				return err
			}
			if maxSlots > 0 && d.fab.Slot() >= maxSlots {
				return nil
			}
		}
	}
}

// snapshot is the JSON document of GET /metrics.
type snapshot struct {
	Slot          int64  `json:"slot"`
	M             int    `json:"m"`
	K             int    `json:"k"`
	R             int    `json:"r"`
	N             int    `json:"n"`
	Scheduler     string `json:"scheduler"`
	Select        string `json:"select"`
	Policy        string `json:"policy"`
	Injected      int64  `json:"injected"`
	Delivered     int64  `json:"delivered"`
	Dropped       int64  `json:"dropped"`
	Rejected      int64  `json:"rejected"`
	Backpressured int64  `json:"backpressured"`
	LinkNacks     int64  `json:"link_nacks"`
	Resident      int64  `json:"resident"`
	MiddleLive    []bool `json:"middle_live"`
}

func (d *daemon) snapshot() snapshot {
	st := d.fab.Stats()
	m, k, r := d.fab.Dims()
	s := snapshot{
		Slot: d.fab.Slot(), M: m, K: k, R: r, N: d.fab.N(),
		Scheduler: d.cfg.Scheduler, Select: d.cfg.Select.String(), Policy: d.cfg.Policy.String(),
		Injected:      st.Injected.Value(),
		Delivered:     st.Delivered.Value(),
		Dropped:       st.Dropped.Value(),
		Rejected:      st.Rejected.Value(),
		Backpressured: st.Backpressured.Value(),
		LinkNacks:     st.LinkNacks.Value(),
		Resident:      st.Injected.Value() - st.Delivered.Value() - st.Dropped.Value(),
		MiddleLive:    make([]bool, m),
	}
	for c := 0; c < m; c++ {
		s.MiddleLive[c] = st.MiddleLive[c].Value() == 1
	}
	return s
}

func (d *daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	switch obs.NegotiateMetricsFormat(r) {
	case obs.FormatPrometheus:
		w.Header().Set("Content-Type", obs.ContentTypePrometheus)
		if r.Method == http.MethodHead {
			return
		}
		if err := d.registry.WritePrometheus(w); err != nil {
			return
		}
	default:
		w.Header().Set("Content-Type", "application/json")
		if r.Method == http.MethodHead {
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(d.snapshot())
	}
}

// stageSummary is one switch engine's row in GET /fabric.
type stageSummary struct {
	Stage     string `json:"stage"`
	Index     int    `json:"index"`
	Slots     int64  `json:"slots"`
	Admitted  int64  `json:"admitted"`
	Delivered int64  `json:"delivered"`
	Backlog   int64  `json:"backlog"`
	Stranded  int64  `json:"stranded"`
	Dropped   int64  `json:"dropped"`
}

func (d *daemon) handleFabric(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	m, _, rr := d.fab.Dims()
	var rows []stageSummary
	add := func(stage uint8, name string, count int) {
		for i := 0; i < count; i++ {
			e := d.fab.Engine(stage, i)
			st := e.Stats()
			rows = append(rows, stageSummary{
				Stage: name, Index: i,
				Slots:     e.Slot(),
				Admitted:  st.Admitted.Value(),
				Delivered: st.Delivered.Value(),
				Backlog:   st.Backlog.Value(),
				Stranded:  st.Stranded.Value(),
				Dropped:   st.DroppedFault.Value(),
			})
		}
	}
	add(clint.StageIngress, "ingress", rr)
	add(clint.StageMiddle, "middle", m)
	add(clint.StageEgress, "egress", rr)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Fabric   snapshot       `json:"fabric"`
		Switches []stageSummary `json:"switches"`
	}{d.snapshot(), rows})
}

// middleState is one middle switch's entry in the GET /fault document.
type middleState struct {
	Middle int  `json:"middle"`
	Live   bool `json:"live"`
}

// handleFault is the fabric-shaped fault-injection surface:
//
//	GET  /fault                          — liveness of every middle switch
//	POST /fault?middle=2&state=down      — kill middle switch 2 whole
//	POST /fault?middle=2&state=up        — revive it
//
// Transitions are marshalled onto the tick goroutine and take effect at
// the next slot boundary; both directions are idempotent.
func (d *daemon) handleFault(w http.ResponseWriter, r *http.Request) {
	m, _, _ := d.fab.Dims()
	writeState := func() {
		st := d.fab.Stats()
		states := make([]middleState, m)
		for c := 0; c < m; c++ {
			states[c] = middleState{Middle: c, Live: st.MiddleLive[c].Value() == 1}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(states)
	}
	switch r.Method {
	case http.MethodGet:
		writeState()
	case http.MethodPost:
		q := r.URL.Query()
		c, err := strconv.Atoi(q.Get("middle"))
		if err != nil || c < 0 || c >= m {
			http.Error(w, fmt.Sprintf("POST /fault needs ?middle in [0,%d)", m), http.StatusBadRequest)
			return
		}
		var down bool
		switch q.Get("state") {
		case "down":
			down = true
		case "up":
			down = false
		default:
			http.Error(w, "POST /fault needs ?state=down or ?state=up", http.StatusBadRequest)
			return
		}
		op := faultOp{middle: c, down: down, done: make(chan error, 1)}
		select {
		case d.ops <- op:
		default:
			http.Error(w, "fault queue full, retry", http.StatusServiceUnavailable)
			return
		}
		if err := <-op.done; err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeState()
	default:
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// stageEvent is one trace line of GET /trace: an engine slot event tagged
// with the engine's fabric position.
type stageEvent struct {
	Stage string `json:"stage"`
	Index int    `json:"index"`
	obs.Event
}

func stageLabel(stage uint8) string {
	switch stage {
	case clint.StageIngress:
		return "ingress"
	case clint.StageMiddle:
		return "middle"
	default:
		return "egress"
	}
}

// handleTrace drains every engine's slot-event ring as JSONL, each line
// carrying the engine's stage and index; POST ?enabled=true|false toggles
// recording on every tracer at once.
func (d *daemon) handleTrace(w http.ResponseWriter, r *http.Request) {
	if len(d.tracerAt) == 0 {
		http.Error(w, "tracing not built: restart with -trace-ring > 0", http.StatusNotFound)
		return
	}
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, pos := range d.positions {
			for _, ev := range d.tracerAt[pos].Drain() {
				if err := enc.Encode(stageEvent{Stage: stageLabel(pos.stage), Index: pos.idx, Event: ev}); err != nil {
					return
				}
			}
		}
	case http.MethodPost:
		enabled, err := strconv.ParseBool(r.URL.Query().Get("enabled"))
		if err != nil {
			http.Error(w, "POST /trace needs ?enabled=true or ?enabled=false", http.StatusBadRequest)
			return
		}
		for _, tr := range d.tracerAt {
			tr.SetEnabled(enabled)
		}
		fmt.Fprintf(w, "tracing enabled=%v on %d engines\n", enabled, len(d.tracerAt))
	default:
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lcffab: "+format+"\n", args...)
	os.Exit(1)
}

func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lcffab: "+format+"\n", args...)
	os.Exit(2)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
