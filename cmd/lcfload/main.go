// Command lcfload is the closed-loop load generator for lcfd: it opens one
// connection per switch port, offers Bernoulli traffic in one of the
// repository's patterns (the PG boxes of Figure 11, aimed at a live switch
// instead of the simulator), and reports achieved throughput, nack-based
// backpressure and end-to-end latency.
//
// Each connection is both a traffic source (its input port) and a sink
// (the same-numbered output port). Frames carry a client-side send
// timestamp that the switch echoes on delivery, so latency is measured
// against a single clock with no switch cooperation.
//
// The generator rides through switch-side degradation: a NACKed frame is
// retransmitted with doubling backoff up to -retries times before being
// given up as dropped, and a connection the switch hangs up on (port
// failed over, daemon restarted) is redialed until the same port is
// reclaimed. Both paths are visible in the final report.
//
// With -flows the generator drives the switch's flow front tier (lcfd
// -flows) instead of per-port admission: every frame carries a 64-bit
// flow id drawn from a Zipf-skewed popularity distribution over -flows
// distinct flows (-flow-skew sets the exponent; 0 is uniform, 1 the
// classic elephant/mice law), and the switch steers each flow to a
// sticky input port. A full steering table nacks exactly like a full
// VOQ, so the retransmit path is shared.
//
// With -class-mix the generator drives the switch's PIFO service-class
// tier (lcfd -classes) instead: each frame is labelled with a class
// index drawn from the given relative weights ("8,1,1" sends 80% class
// 0), and the switch ranks it against its class policy before the VOQs.
// The switch-side report then breaks deliveries, drops and SLO
// violations out per class.
//
// Usage:
//
//	lcfload -pattern uniform -load 0.8
//	lcfload -addr switch:9416 -pattern hotspot -load 0.6 -slots 20000
//	lcfload -flows 100000 -flow-skew 1.1 -slots 20000   # flow mode
//	lcfload -class-mix 8,1,1 -slots 20000               # class mode
//
// Expected output (lcfd with defaults on the same host):
//
//	lcfload: n=16 pattern=uniform load=0.80 slots=5000 slot=1ms
//	sent 64162 frames (offered 0.802/port/slot), delivered 64162, nacked 0, retransmitted 0, dropped 0, unaccounted 0
//	achieved throughput 0.802 frames/port/slot (100.0% of offered)
//	end-to-end latency: mean 0.9ms p50 0.8ms p95 1.6ms p99 2.0ms
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clint"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/traffic"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:9416", "lcfd data-plane address")
		n            = flag.Int("n", 16, "connections to open (= ports driven)")
		pattern      = flag.String("pattern", "uniform", "traffic pattern: uniform, hotspot, diagonal, logdiagonal, bursty")
		load         = flag.Float64("load", 0.8, "offered load per port in [0,1]")
		slots        = flag.Int("slots", 5000, "generator slots to run")
		slot         = flag.Duration("slot", time.Millisecond, "generator slot period")
		seed         = flag.Uint64("seed", 1, "arrival RNG seed")
		burst        = flag.Float64("burst", 16, "mean burst length (bursty pattern)")
		hotfrac      = flag.Float64("hotfrac", 0.5, "traffic fraction to the hot port (hotspot pattern)")
		drain        = flag.Duration("drain", 3*time.Second, "give up on in-flight frames this long after the last delivery progress")
		retries      = flag.Int("retries", 3, "retransmit attempts per frame after a NACK before counting it dropped")
		retryBackoff = flag.Duration("retry-backoff", 2*time.Millisecond, "first retransmit backoff, doubling per attempt (jittered; see -retry-backoff-max)")
		retryMax     = flag.Duration("retry-backoff-max", 250*time.Millisecond, "cap on the exponential retransmit/redial backoff")
		metricsURL   = flag.String("metrics", "", "lcfd metrics URL (e.g. http://127.0.0.1:9417/metrics); scraped after the run for the switch-side view")
		flows        = flag.Int("flows", 0, "distinct flow ids to offer through the switch's flow front tier (0 = classic per-port data frames; the daemon needs -flows too)")
		flowSkew     = flag.Float64("flow-skew", 1.0, "Zipf skew exponent of the flow popularity distribution (0 = uniform; requires -flows)")
		classMix     = flag.String("class-mix", "", "per-class traffic weights w0,w1,... by class index — send class data frames through the switch's PIFO tier (the daemon needs -classes too; mutually exclusive with -flows)")
	)
	flag.Parse()
	// Flag validation failures are usage errors: exit 2, distinct from
	// the runtime failures fatal reports with exit 1.
	if *n <= 0 {
		fatalUsage("-n must be positive")
	}
	if *load < 0 || *load > 1 {
		fatalUsage("-load %g out of [0,1]", *load)
	}
	if *slots <= 0 || *slot <= 0 {
		fatalUsage("-slots and -slot must be positive")
	}
	if *retries < 0 || *retryBackoff <= 0 {
		fatalUsage("-retries must be >= 0 and -retry-backoff positive")
	}
	if *retryMax < *retryBackoff {
		fatalUsage("-retry-backoff-max %v is below -retry-backoff %v", *retryMax, *retryBackoff)
	}
	if *flows < 0 {
		fatalUsage("-flows must be >= 0 (got %d)", *flows)
	}
	if *flowSkew < 0 {
		fatalUsage("-flow-skew must be >= 0 (got %g)", *flowSkew)
	}
	if *flows == 0 {
		// Flow-mode tuning without flow mode is a misconfiguration, not a
		// silent no-op.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "flow-skew" {
				fatalUsage("-flow-skew requires -flows > 0")
			}
		})
	}
	var mix *classPicker
	if *classMix != "" {
		if *flows > 0 {
			fatalUsage("-class-mix and -flows are mutually exclusive (a frame carries a flow id or a class label, not both)")
		}
		ws, err := parseClassMix(*classMix)
		if err != nil {
			fatalUsage("%v", err)
		}
		mix = newClassPicker(ws, *seed^0xc1a55)
	}
	gen, err := buildGenerator(*pattern, *n, *load, *burst, *hotfrac, *seed)
	if err != nil {
		fatalUsage("%v", err)
	}
	var zipf *traffic.Zipf
	if *flows > 0 {
		// An independent stream from the arrival RNGs: adding flow ids
		// must not perturb the per-port arrival sequences.
		zipf = traffic.NewZipf(*flows, *flowSkew, *seed^0xf10f10f1)
	}
	// The retry/redial jitter stream, independent of the arrival and
	// class-pick streams for the same reason.
	jit := newJitter(*seed ^ 0x5eedbacc)

	conns := make([]*portConn, *n)
	for i := range conns {
		c, err := dialPort(*addr)
		if err != nil {
			fatal("connection %d: %v", i, err)
		}
		if conns[c.port] != nil {
			fatal("switch assigned port %d twice", c.port)
		}
		conns[c.port] = c
	}
	for p, c := range conns {
		if c == nil {
			fatal("no connection was assigned port %d (is another client attached to lcfd?)", p)
		}
	}

	var (
		delivered    atomic.Int64
		nacked       atomic.Int64 // NACK events, including ones that trigger a retransmit
		retransmits  atomic.Int64
		dropped      atomic.Int64 // frames given up after exhausting -retries
		reconnects   atomic.Int64
		writeErrs    atomic.Int64
		shuttingDown atomic.Bool
	)
	flights := &flightTable{pending: make(map[uint64]*flight)}
	latency := metrics.NewLiveHistogram(metrics.ExponentialBounds(float64(50*time.Microsecond), 1.5, 32))
	var latencyMu sync.Mutex
	latencyStream := &metrics.Stream{}

	// retryOrDrop consults the flight table after a failed offer (switch
	// NACK or client-side write error) and either schedules a backed-off
	// retransmit on c or gives the frame up. Retransmits reuse the
	// original Stamp, so reported latency is true end-to-end time
	// including the backoff the frame sat out.
	var retryOrDrop func(c *portConn, seq uint64)
	retryOrDrop = func(c *portConn, seq uint64) {
		fl, disp := flights.retry(seq, *retries)
		switch disp {
		case flightGone: // delivered while the retry raced in
			return
		case flightExhausted:
			dropped.Add(1)
			return
		}
		delay := retryDelay(*retryBackoff, *retryMax, fl.attempts, jit.next())
		time.AfterFunc(delay, func() {
			if shuttingDown.Load() {
				return
			}
			var buf []byte
			switch {
			case fl.isFlow:
				buf = clint.FlowData{Flow: fl.flow, Dst: fl.dst, Seq: seq, Stamp: fl.stamp}.Encode()
			case fl.isClass:
				buf = clint.ClassData{Class: fl.class, Dst: fl.dst, Seq: seq, Stamp: fl.stamp}.Encode()
			default:
				buf = clint.Data{Dst: fl.dst, Seq: seq, Stamp: fl.stamp}.Encode()
			}
			if err := c.send(buf); err != nil {
				retryOrDrop(c, seq) // conn mid-reconnect: burn another attempt
				return
			}
			retransmits.Add(1)
		})
	}

	var receivers sync.WaitGroup
	for _, c := range conns {
		receivers.Add(1)
		go func(c *portConn) {
			defer receivers.Done()
			var hdr [1]byte
			buf := make([]byte, 64)
			for {
				if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
					if shuttingDown.Load() || !c.redial(*addr, &shuttingDown, jit) {
						return
					}
					reconnects.Add(1)
					continue
				}
				flen := clint.FrameLen(hdr[0])
				if flen == 0 {
					fmt.Fprintf(os.Stderr, "lcfload: port %d: unknown frame type %#02x\n", c.port, hdr[0])
					return
				}
				frame := buf[:flen]
				frame[0] = hdr[0]
				if _, err := io.ReadFull(c.r, frame[1:]); err != nil {
					if shuttingDown.Load() || !c.redial(*addr, &shuttingDown, jit) {
						return
					}
					reconnects.Add(1)
					continue
				}
				switch hdr[0] {
				case clint.TypeData:
					d, err := clint.DecodeData(frame)
					if err != nil {
						fmt.Fprintf(os.Stderr, "lcfload: port %d: %v\n", c.port, err)
						return
					}
					flights.settle(d.Seq)
					lat := float64(uint64(time.Now().UnixNano()) - d.Stamp)
					delivered.Add(1)
					latency.Observe(lat)
					latencyMu.Lock()
					latencyStream.Add(lat)
					latencyMu.Unlock()
				case clint.TypeNack:
					nk, err := clint.DecodeNack(frame)
					if err != nil {
						fmt.Fprintf(os.Stderr, "lcfload: port %d: %v\n", c.port, err)
						return
					}
					nacked.Add(1)
					retryOrDrop(c, nk.Seq)
				}
			}
		}(c)
	}

	// The pacer: one goroutine ticks the generator clock and fans frames
	// out over all connections. Retransmit timers and reconnects write
	// too, so every touch of a connection's writer goes through its
	// mutex. A write error here is not fatal — the receiver is already
	// redialing — so the frame takes the retry path like a NACK.
	var sent int64
	var seq uint64
	frame := make([]byte, clint.DataLen)
	flowFrame := make([]byte, clint.FlowDataLen)
	classFrame := make([]byte, clint.ClassDataLen)
	start := time.Now()
	ticker := time.NewTicker(*slot)
	for t := 0; t < *slots; t++ {
		<-ticker.C
		for in := 0; in < *n; in++ {
			dst := gen.Next(in)
			if dst == traffic.NoPacket {
				continue
			}
			seq++
			stamp := uint64(time.Now().UnixNano())
			wire := frame
			switch {
			case zipf != nil:
				// Flow mode: the connection is transport only — the switch
				// steers the frame to an input port by its flow id.
				id := uint64(zipf.Next())
				clint.FlowData{Flow: id, Dst: uint8(dst), Seq: seq, Stamp: stamp}.EncodeTo(flowFrame)
				flights.trackFlow(seq, id, uint8(dst), stamp)
				wire = flowFrame
			case mix != nil:
				// Class mode: label the frame; the switch ranks it in its
				// (input, output) PIFO. Deadline 0 = the class's own budget.
				class := mix.pick()
				clint.ClassData{Class: class, Dst: uint8(dst), Seq: seq, Stamp: stamp}.EncodeTo(classFrame)
				flights.trackClass(seq, class, uint8(dst), stamp)
				wire = classFrame
			default:
				clint.Data{Dst: uint8(dst), Seq: seq, Stamp: stamp}.EncodeTo(frame)
				flights.track(seq, uint8(dst), stamp)
			}
			sent++
			if err := conns[in].write(wire); err != nil {
				writeErrs.Add(1)
				retryOrDrop(conns[in], seq)
			}
		}
		gen.Advance()
		for _, c := range conns {
			if err := c.flush(); err != nil {
				// Frames buffered behind a dead conn are lost client-side
				// and settle as unaccounted; the receiver is redialing.
				writeErrs.Add(1)
			}
		}
	}
	ticker.Stop()
	elapsed := time.Since(start)

	// Closed loop: every sent frame ends as a delivery or an exhausted
	// retry. Wait on a coarse ticker rather than spinning, and extend the
	// deadline while the count is still moving, so a slow post-fault
	// recovery is not cut off mid-drain while a wedged run still
	// terminates within -drain of its last progress.
	deadline := time.Now().Add(*drain)
	pulse := time.NewTicker(20 * time.Millisecond)
	lastAccounted := int64(-1)
	for {
		accounted := delivered.Load() + dropped.Load()
		if accounted >= sent {
			break
		}
		if accounted > lastAccounted {
			lastAccounted = accounted
			deadline = time.Now().Add(*drain)
		}
		if !time.Now().Before(deadline) {
			break
		}
		<-pulse.C
	}
	pulse.Stop()
	shuttingDown.Store(true)
	for _, c := range conns {
		c.close()
	}
	receivers.Wait()

	del, nak, rtx, drop := delivered.Load(), nacked.Load(), retransmits.Load(), dropped.Load()
	lost := sent - del - drop
	offered := float64(sent) / float64(*slots**n)
	achieved := float64(del) / float64(*slots**n)
	flowMode := ""
	if zipf != nil {
		flowMode = fmt.Sprintf(" flows=%d skew=%.2f", *flows, *flowSkew)
	}
	if mix != nil {
		flowMode = fmt.Sprintf(" class-mix=%s", *classMix)
	}
	fmt.Printf("lcfload: n=%d pattern=%s load=%.2f slots=%d slot=%v%s elapsed=%v\n",
		*n, *pattern, *load, *slots, *slot, flowMode, elapsed.Round(time.Millisecond))
	fmt.Printf("sent %d frames (offered %.3f/port/slot), delivered %d, nacked %d, retransmitted %d, dropped %d, unaccounted %d\n",
		sent, offered, del, nak, rtx, drop, lost)
	if rc := reconnects.Load(); rc > 0 || writeErrs.Load() > 0 {
		fmt.Printf("degraded operation: %d reconnects, %d write errors\n", rc, writeErrs.Load())
	}
	if offered > 0 {
		fmt.Printf("achieved throughput %.3f frames/port/slot (%.1f%% of offered)\n",
			achieved, 100*achieved/offered)
	}
	if del > 0 {
		latencyMu.Lock()
		mean := latencyStream.Mean()
		max := latencyStream.Max()
		latencyMu.Unlock()
		fmt.Printf("end-to-end latency: mean %v p50 %s p95 %s p99 %s max %v\n",
			time.Duration(mean).Round(10*time.Microsecond),
			quantileLabel(latency, 0.50),
			quantileLabel(latency, 0.95),
			quantileLabel(latency, 0.99),
			time.Duration(max).Round(10*time.Microsecond))
	}
	if *metricsURL != "" {
		if err := reportSwitchSide(*metricsURL); err != nil {
			fmt.Fprintf(os.Stderr, "lcfload: switch-side metrics: %v\n", err)
		}
	}
	if lost > 0 {
		fmt.Fprintf(os.Stderr, "lcfload: %d frames unaccounted for %v after last progress\n", lost, *drain)
		os.Exit(1)
	}
}

// quantileLabel renders one latency quantile for the report.
// LiveHistogram.Quantile returns +Inf when the quantile falls in the
// overflow bucket — beyond the histogram's top bound — and formatting
// that as a Duration used to print a garbage negative number that read
// like a real (and excellent) p99. Overflow is reported as an explicit
// lower bound instead.
func quantileLabel(h *metrics.LiveHistogram, q float64) string {
	v := h.Quantile(q)
	if math.IsInf(v, 1) {
		bounds := h.Snapshot().Bounds
		top := time.Duration(bounds[len(bounds)-1])
		return fmt.Sprintf(">%v", top.Round(10*time.Microsecond))
	}
	return time.Duration(v).Round(10 * time.Microsecond).String()
}

// reportSwitchSide scrapes lcfd's Prometheus exposition and prints the
// switch's own view of the run — what the scheduler saw and decided —
// next to the client-side numbers above.
func reportSwitchSide(url string) error {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	s, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		return err
	}
	slots, _ := s.Value("lcf_engine_slots_total")
	requested, _ := s.Value("lcf_engine_requested_total")
	matched, _ := s.Value("lcf_engine_matched_total")
	backpressured, _ := s.Value("lcf_engine_backpressured_total")
	fmt.Printf("switch side: %0.f slots, %0.f requests, %0.f matched", slots, requested, matched)
	if requested > 0 {
		fmt.Printf(" (match ratio %.3f)", matched/requested)
	}
	fmt.Printf(", %0.f backpressured\n", backpressured)
	var parts []string
	for _, rule := range []string{"lcf", "diagonal", "prescheduled", "unattributed"} {
		if v, ok := s.Value(`lcf_grants_total{rule="` + rule + `"}`); ok && v > 0 {
			parts = append(parts, fmt.Sprintf("%s %.0f", rule, v))
		}
	}
	if len(parts) > 0 {
		fmt.Printf("grants by rule: %s\n", strings.Join(parts, ", "))
	}
	// The flow tier's view, when the daemon runs one.
	if steered, ok := s.Value("lcf_flow_steered_total"); ok {
		resident, _ := s.Value("lcf_flow_resident")
		admitted, _ := s.Value("lcf_flow_admitted_total")
		rejected, _ := s.Value("lcf_flow_rejected_total")
		imbalance, _ := s.Value("lcf_flow_backlog_imbalance")
		fmt.Printf("flow tier: %.0f resident, %.0f steered (%.0f new, %.0f rejected), backlog imbalance %.2f\n",
			resident, steered, admitted, rejected, imbalance)
	}
	// The class tier's view, when the daemon runs one: one line per
	// configured class, keyed off the delivered counter (present for
	// every class from startup, even at zero).
	var classes []string
	for key := range s {
		if m := classSeriesRE.FindStringSubmatch(key); m != nil {
			classes = append(classes, m[1])
		}
	}
	sort.Strings(classes)
	for _, name := range classes {
		label := `{class="` + name + `"}`
		admitted, _ := s.Value("lcf_class_admitted_total" + label)
		delivered, _ := s.Value("lcf_class_delivered_total" + label)
		dropped, _ := s.Value("lcf_class_dropped_total" + label)
		violations, _ := s.Value("lcf_class_slo_violations_total" + label)
		fmt.Printf("class %s: %.0f admitted, %.0f delivered, %.0f dropped, %.0f SLO violations\n",
			name, admitted, delivered, dropped, violations)
	}
	return nil
}

var classSeriesRE = regexp.MustCompile(`^lcf_class_delivered_total\{class="([^"]+)"\}$`)

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lcfload: "+format+"\n", args...)
	os.Exit(1)
}

// fatalUsage exits with status 2, the conventional code for command-line
// usage errors (fatal's 1 is for runtime failures).
func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lcfload: "+format+"\n", args...)
	os.Exit(2)
}

// Dispositions returned by flightTable.retry.
const (
	flightRetry     = iota // attempt budget left: retransmit
	flightExhausted        // out of attempts: count dropped
	flightGone             // already settled: delivery won the race
)

// flight is one unacknowledged frame. The switch's NACK carries only
// the sequence number, so dst and the original timestamp must be kept
// client-side for the retransmit to be reconstructable.
type flight struct {
	dst      uint8
	stamp    uint64
	flow     uint64 // flow id; meaningful only when isFlow
	isFlow   bool   // retransmit as a flow data frame
	class    uint8  // class index; meaningful only when isClass
	isClass  bool   // retransmit as a class data frame
	attempts int
}

// flightTable indexes every in-flight frame by sequence number:
// deliveries settle entries, NACKs and write errors consult the retry
// budget. Sequence numbers are global across ports (one pacer), so one
// table serves all connections.
type flightTable struct {
	mu      sync.Mutex
	pending map[uint64]*flight
}

func (ft *flightTable) track(seq uint64, dst uint8, stamp uint64) {
	ft.mu.Lock()
	ft.pending[seq] = &flight{dst: dst, stamp: stamp}
	ft.mu.Unlock()
}

// trackFlow is track for flow mode: the retransmit must rebuild the
// flow data frame, so the flow id rides in the flight.
func (ft *flightTable) trackFlow(seq, flow uint64, dst uint8, stamp uint64) {
	ft.mu.Lock()
	ft.pending[seq] = &flight{dst: dst, stamp: stamp, flow: flow, isFlow: true}
	ft.mu.Unlock()
}

// trackClass is track for class mode: the class label rides in the
// flight so the retransmit rebuilds the same class data frame.
func (ft *flightTable) trackClass(seq uint64, class, dst uint8, stamp uint64) {
	ft.mu.Lock()
	ft.pending[seq] = &flight{dst: dst, stamp: stamp, class: class, isClass: true}
	ft.mu.Unlock()
}

func (ft *flightTable) settle(seq uint64) {
	ft.mu.Lock()
	delete(ft.pending, seq)
	ft.mu.Unlock()
}

func (ft *flightTable) retry(seq uint64, max int) (flight, int) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	fl, ok := ft.pending[seq]
	if !ok {
		return flight{}, flightGone
	}
	if fl.attempts >= max {
		delete(ft.pending, seq)
		return flight{}, flightExhausted
	}
	fl.attempts++
	return *fl, flightRetry
}

// portConn is one host connection after the hello handshake. The pacer,
// retransmit timers and the redial path all touch the writer, so every
// write goes through mu; reads stay lock-free because only the
// receiver goroutine reads, and it is also the only one that swaps the
// connection on redial.
type portConn struct {
	port int
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

func (c *portConn) write(b []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err := c.w.Write(b)
	return err
}

func (c *portConn) flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.w.Flush()
}

// send is write+flush for paths outside the pacer's batched cadence
// (retransmits), where the frame should hit the wire now.
func (c *portConn) send(b []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.w.Write(b); err != nil {
		return err
	}
	return c.w.Flush()
}

func (c *portConn) close() {
	c.mu.Lock()
	c.conn.Close()
	c.mu.Unlock()
}

// redial reconnects after the switch hangs up and insists on
// reclaiming the same port: lcfd assigns the lowest free port, so once
// the daemon notices our EOF and releases it, the old number is the
// first one handed back (every lower port is held by our sibling
// connections). A different assignment means the release hasn't landed
// yet — hand the connection back and try again. Called only from the
// receiver goroutine, which owns the read side.
func (c *portConn) redial(addr string, shuttingDown *atomic.Bool, jit *jitter) bool {
	for attempt := 1; attempt <= 10 && !shuttingDown.Load(); attempt++ {
		// Same capped, jittered exponential as the retransmit path: after
		// a daemon restart every port redials at once, and bare doubling
		// would keep all n SYNs phase-locked through every attempt.
		time.Sleep(retryDelay(10*time.Millisecond, 500*time.Millisecond, attempt, jit.next()))
		nc, err := dialPort(addr)
		if err != nil {
			continue
		}
		if nc.port != c.port {
			nc.conn.Close()
			continue
		}
		c.mu.Lock()
		c.conn.Close()
		c.conn, c.r, c.w = nc.conn, nc.r, nc.w
		c.mu.Unlock()
		return true
	}
	return false
}

// dialPort connects and completes the Clint initialization grant, learning
// which port the switch assigned us.
func dialPort(addr string) (*portConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	r := bufio.NewReader(conn)
	hello := make([]byte, clint.GrantLen)
	if _, err := io.ReadFull(r, hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("hello: %w", err)
	}
	g, err := clint.DecodeGrant(hello)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("hello: %w", err)
	}
	if !g.GntVal {
		conn.Close()
		return nil, fmt.Errorf("switch refused the connection (all ports taken)")
	}
	return &portConn{conn: conn, port: int(g.NodeID), r: r, w: bufio.NewWriter(conn)}, nil
}

// buildGenerator maps a pattern name to the repository's traffic
// generators (the same set cmd/lcfsim sweeps offline).
func buildGenerator(pattern string, n int, load, burst, hotfrac float64, seed uint64) (traffic.Generator, error) {
	switch pattern {
	case "uniform":
		return traffic.NewBernoulli(n, load, traffic.NewUniform(n), seed), nil
	case "hotspot":
		return traffic.NewBernoulli(n, load, traffic.NewHotspot(n, 0, hotfrac), seed), nil
	case "diagonal":
		return traffic.NewBernoulli(n, load, traffic.NewDiagonal(n), seed), nil
	case "logdiagonal":
		return traffic.NewBernoulli(n, load, traffic.NewLogDiagonal(n), seed), nil
	case "bursty":
		return traffic.NewBursty(n, load, burst, traffic.NewUniform(n), seed), nil
	default:
		return nil, fmt.Errorf("unknown traffic pattern %q (known: uniform, hotspot, diagonal, logdiagonal, bursty)", pattern)
	}
}
