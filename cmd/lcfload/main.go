// Command lcfload is the closed-loop load generator for lcfd: it opens one
// connection per switch port, offers Bernoulli traffic in one of the
// repository's patterns (the PG boxes of Figure 11, aimed at a live switch
// instead of the simulator), and reports achieved throughput, nack-based
// backpressure and end-to-end latency.
//
// Each connection is both a traffic source (its input port) and a sink
// (the same-numbered output port). Frames carry a client-side send
// timestamp that the switch echoes on delivery, so latency is measured
// against a single clock with no switch cooperation.
//
// Usage:
//
//	lcfload -pattern uniform -load 0.8
//	lcfload -addr switch:9416 -pattern hotspot -load 0.6 -slots 20000
//
// Expected output (lcfd with defaults on the same host):
//
//	lcfload: n=16 pattern=uniform load=0.80 slots=5000 slot=1ms
//	sent 64162 frames (offered 0.802/port/slot), delivered 64162, nacked 0
//	achieved throughput 0.802 frames/port/slot (100.0% of offered)
//	end-to-end latency: mean 0.9ms p50 0.8ms p95 1.6ms p99 2.0ms
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clint"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/traffic"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:9416", "lcfd data-plane address")
		n          = flag.Int("n", 16, "connections to open (= ports driven)")
		pattern    = flag.String("pattern", "uniform", "traffic pattern: uniform, hotspot, diagonal, logdiagonal, bursty")
		load       = flag.Float64("load", 0.8, "offered load per port in [0,1]")
		slots      = flag.Int("slots", 5000, "generator slots to run")
		slot       = flag.Duration("slot", time.Millisecond, "generator slot period")
		seed       = flag.Uint64("seed", 1, "arrival RNG seed")
		burst      = flag.Float64("burst", 16, "mean burst length (bursty pattern)")
		hotfrac    = flag.Float64("hotfrac", 0.5, "traffic fraction to the hot port (hotspot pattern)")
		drain      = flag.Duration("drain", 3*time.Second, "wait for in-flight frames after the last slot")
		metricsURL = flag.String("metrics", "", "lcfd metrics URL (e.g. http://127.0.0.1:9417/metrics); scraped after the run for the switch-side view")
	)
	flag.Parse()
	if *n <= 0 {
		fatal("-n must be positive")
	}
	if *load < 0 || *load > 1 {
		fatal("-load %g out of [0,1]", *load)
	}
	if *slots <= 0 || *slot <= 0 {
		fatal("-slots and -slot must be positive")
	}
	gen, err := buildGenerator(*pattern, *n, *load, *burst, *hotfrac, *seed)
	if err != nil {
		fatal("%v", err)
	}

	conns := make([]*portConn, *n)
	for i := range conns {
		c, err := dialPort(*addr)
		if err != nil {
			fatal("connection %d: %v", i, err)
		}
		if conns[c.port] != nil {
			fatal("switch assigned port %d twice", c.port)
		}
		conns[c.port] = c
	}
	for p, c := range conns {
		if c == nil {
			fatal("no connection was assigned port %d (is another client attached to lcfd?)", p)
		}
	}

	var (
		delivered atomic.Int64
		nacked    atomic.Int64
	)
	latency := metrics.NewLiveHistogram(metrics.ExponentialBounds(float64(50*time.Microsecond), 1.5, 32))
	var latencyMu sync.Mutex
	latencyStream := &metrics.Stream{}

	var receivers sync.WaitGroup
	for _, c := range conns {
		receivers.Add(1)
		go func(c *portConn) {
			defer receivers.Done()
			var hdr [1]byte
			buf := make([]byte, 64)
			for {
				if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
					return
				}
				flen := clint.FrameLen(hdr[0])
				if flen == 0 {
					fmt.Fprintf(os.Stderr, "lcfload: port %d: unknown frame type %#02x\n", c.port, hdr[0])
					return
				}
				frame := buf[:flen]
				frame[0] = hdr[0]
				if _, err := io.ReadFull(c.r, frame[1:]); err != nil {
					return
				}
				switch hdr[0] {
				case clint.TypeData:
					d, err := clint.DecodeData(frame)
					if err != nil {
						fmt.Fprintf(os.Stderr, "lcfload: port %d: %v\n", c.port, err)
						return
					}
					lat := float64(uint64(time.Now().UnixNano()) - d.Stamp)
					delivered.Add(1)
					latency.Observe(lat)
					latencyMu.Lock()
					latencyStream.Add(lat)
					latencyMu.Unlock()
				case clint.TypeNack:
					nacked.Add(1)
				}
			}
		}(c)
	}

	// The pacer: one goroutine ticks the generator clock and fans frames
	// out over all connections (writes are pacer-only, reads are
	// receiver-only, so no per-connection locking).
	var sent int64
	var seq uint64
	frame := make([]byte, clint.DataLen)
	start := time.Now()
	ticker := time.NewTicker(*slot)
	for t := 0; t < *slots; t++ {
		<-ticker.C
		for in := 0; in < *n; in++ {
			dst := gen.Next(in)
			if dst == traffic.NoPacket {
				continue
			}
			seq++
			clint.Data{
				Dst:   uint8(dst),
				Seq:   seq,
				Stamp: uint64(time.Now().UnixNano()),
			}.EncodeTo(frame)
			if _, err := conns[in].w.Write(frame); err != nil {
				fatal("port %d: write: %v", in, err)
			}
			sent++
		}
		gen.Advance()
		for _, c := range conns {
			if err := c.w.Flush(); err != nil {
				fatal("port %d: flush: %v", c.port, err)
			}
		}
	}
	ticker.Stop()
	elapsed := time.Since(start)

	// Closed loop: every sent frame comes back as a delivery or a nack.
	deadline := time.Now().Add(*drain)
	for delivered.Load()+nacked.Load() < sent && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	for _, c := range conns {
		c.conn.Close()
	}
	receivers.Wait()

	del, nak := delivered.Load(), nacked.Load()
	lost := sent - del - nak
	offered := float64(sent) / float64(*slots**n)
	achieved := float64(del) / float64(*slots**n)
	fmt.Printf("lcfload: n=%d pattern=%s load=%.2f slots=%d slot=%v elapsed=%v\n",
		*n, *pattern, *load, *slots, *slot, elapsed.Round(time.Millisecond))
	fmt.Printf("sent %d frames (offered %.3f/port/slot), delivered %d, nacked %d, unaccounted %d\n",
		sent, offered, del, nak, lost)
	if offered > 0 {
		fmt.Printf("achieved throughput %.3f frames/port/slot (%.1f%% of offered)\n",
			achieved, 100*achieved/offered)
	}
	if del > 0 {
		latencyMu.Lock()
		mean := latencyStream.Mean()
		max := latencyStream.Max()
		latencyMu.Unlock()
		fmt.Printf("end-to-end latency: mean %v p50 %v p95 %v p99 %v max %v\n",
			time.Duration(mean).Round(10*time.Microsecond),
			time.Duration(latency.Quantile(0.50)).Round(10*time.Microsecond),
			time.Duration(latency.Quantile(0.95)).Round(10*time.Microsecond),
			time.Duration(latency.Quantile(0.99)).Round(10*time.Microsecond),
			time.Duration(max).Round(10*time.Microsecond))
	}
	if *metricsURL != "" {
		if err := reportSwitchSide(*metricsURL); err != nil {
			fmt.Fprintf(os.Stderr, "lcfload: switch-side metrics: %v\n", err)
		}
	}
	if lost > 0 {
		fmt.Fprintf(os.Stderr, "lcfload: %d frames unaccounted for after %v drain\n", lost, *drain)
		os.Exit(1)
	}
}

// reportSwitchSide scrapes lcfd's Prometheus exposition and prints the
// switch's own view of the run — what the scheduler saw and decided —
// next to the client-side numbers above.
func reportSwitchSide(url string) error {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	s, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		return err
	}
	slots, _ := s.Value("lcf_engine_slots_total")
	requested, _ := s.Value("lcf_engine_requested_total")
	matched, _ := s.Value("lcf_engine_matched_total")
	backpressured, _ := s.Value("lcf_engine_backpressured_total")
	fmt.Printf("switch side: %0.f slots, %0.f requests, %0.f matched", slots, requested, matched)
	if requested > 0 {
		fmt.Printf(" (match ratio %.3f)", matched/requested)
	}
	fmt.Printf(", %0.f backpressured\n", backpressured)
	var parts []string
	for _, rule := range []string{"lcf", "diagonal", "prescheduled", "unattributed"} {
		if v, ok := s.Value(`lcf_grants_total{rule="` + rule + `"}`); ok && v > 0 {
			parts = append(parts, fmt.Sprintf("%s %.0f", rule, v))
		}
	}
	if len(parts) > 0 {
		fmt.Printf("grants by rule: %s\n", strings.Join(parts, ", "))
	}
	return nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lcfload: "+format+"\n", args...)
	os.Exit(1)
}

// portConn is one host connection after the hello handshake.
type portConn struct {
	conn net.Conn
	port int
	r    *bufio.Reader
	w    *bufio.Writer
}

// dialPort connects and completes the Clint initialization grant, learning
// which port the switch assigned us.
func dialPort(addr string) (*portConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	r := bufio.NewReader(conn)
	hello := make([]byte, clint.GrantLen)
	if _, err := io.ReadFull(r, hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("hello: %w", err)
	}
	g, err := clint.DecodeGrant(hello)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("hello: %w", err)
	}
	if !g.GntVal {
		conn.Close()
		return nil, fmt.Errorf("switch refused the connection (all ports taken)")
	}
	return &portConn{conn: conn, port: int(g.NodeID), r: r, w: bufio.NewWriter(conn)}, nil
}

// buildGenerator maps a pattern name to the repository's traffic
// generators (the same set cmd/lcfsim sweeps offline).
func buildGenerator(pattern string, n int, load, burst, hotfrac float64, seed uint64) (traffic.Generator, error) {
	switch pattern {
	case "uniform":
		return traffic.NewBernoulli(n, load, traffic.NewUniform(n), seed), nil
	case "hotspot":
		return traffic.NewBernoulli(n, load, traffic.NewHotspot(n, 0, hotfrac), seed), nil
	case "diagonal":
		return traffic.NewBernoulli(n, load, traffic.NewDiagonal(n), seed), nil
	case "logdiagonal":
		return traffic.NewBernoulli(n, load, traffic.NewLogDiagonal(n), seed), nil
	case "bursty":
		return traffic.NewBursty(n, load, burst, traffic.NewUniform(n), seed), nil
	default:
		return nil, fmt.Errorf("unknown traffic pattern %q (known: uniform, hotspot, diagonal, logdiagonal, bursty)", pattern)
	}
}
