package main

import (
	"math"
	"testing"
)

func TestParseClassMix(t *testing.T) {
	ws, err := parseClassMix("8, 1,1")
	if err != nil {
		t.Fatalf("parseClassMix: %v", err)
	}
	if len(ws) != 3 || ws[0] != 8 || ws[1] != 1 || ws[2] != 1 {
		t.Fatalf("parseClassMix = %v, want [8 1 1]", ws)
	}
	// A zero weight is legal as long as some class gets traffic: it
	// configures a class the run deliberately starves.
	if ws, err := parseClassMix("0,1"); err != nil || ws[0] != 0 {
		t.Fatalf("parseClassMix(0,1) = %v, %v", ws, err)
	}
}

func TestParseClassMixRejects(t *testing.T) {
	for _, spec := range []string{
		"",        // empty entry
		"1,",      // trailing empty entry
		"a,1",     // not a number
		"-1,2",    // negative weight
		"0,0",     // nothing would ever be sent
		"NaN,1",   // not finite
		"+Inf,1",  // not finite
		"1e309,1", // overflows to +Inf
	} {
		if _, err := parseClassMix(spec); err == nil {
			t.Errorf("parseClassMix(%q) accepted, want error", spec)
		}
	}
}

func TestParseClassMixTooManyClasses(t *testing.T) {
	spec := "1"
	for i := 0; i < 256; i++ {
		spec += ",1"
	}
	if _, err := parseClassMix(spec); err == nil {
		t.Fatal("parseClassMix accepted 257 classes; the wire field holds 256")
	}
}

// TestClassPickerDistribution draws from an 8:1:1 mix and checks the
// empirical frequencies land near the configured weights.
func TestClassPickerDistribution(t *testing.T) {
	p := newClassPicker([]float64{8, 1, 1}, 42)
	const draws = 100000
	var counts [3]int
	for i := 0; i < draws; i++ {
		c := p.pick()
		if int(c) >= len(counts) {
			t.Fatalf("pick returned class %d, outside the 3-class mix", c)
		}
		counts[c]++
	}
	for i, want := range []float64{0.8, 0.1, 0.1} {
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Errorf("class %d frequency %.3f, want %.3f ± 0.01", i, got, want)
		}
	}
}

// TestClassPickerZeroWeight: a zero-weight class must never be drawn.
func TestClassPickerZeroWeight(t *testing.T) {
	p := newClassPicker([]float64{1, 0, 1}, 7)
	for i := 0; i < 10000; i++ {
		if p.pick() == 1 {
			t.Fatal("picker drew a zero-weight class")
		}
	}
}

// TestClassPickerDeterministic: two pickers with the same seed produce
// the same class sequence, so seeded runs are reproducible.
func TestClassPickerDeterministic(t *testing.T) {
	a := newClassPicker([]float64{3, 2, 1}, 11)
	b := newClassPicker([]float64{3, 2, 1}, 11)
	for i := 0; i < 1000; i++ {
		if ca, cb := a.pick(), b.pick(); ca != cb {
			t.Fatalf("draw %d: %d != %d for identical seeds", i, ca, cb)
		}
	}
}
