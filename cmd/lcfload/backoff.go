package main

import (
	"sync/atomic"
	"time"
)

// jitter is a lock-free seeded splitmix64 stream. The retransmit timers
// and the per-connection redial loops all draw from it concurrently;
// the fetch-add step makes every draw race-free without a mutex, and
// the seed keeps a run reproducible end to end (the draws interleave
// nondeterministically under real timers, but the stream itself is
// fixed by -seed).
type jitter struct{ state atomic.Uint64 }

func newJitter(seed uint64) *jitter {
	j := &jitter{}
	j.state.Store(seed)
	return j
}

func (j *jitter) next() uint64 {
	x := j.state.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// retryDelay returns the backoff before the attempt-th retry (attempt ≥
// 1): exponential from base, capped at max, with equal-jitter spread —
// the delay is drawn uniformly from [d/2, d]. A bare doubling backoff
// keeps every port's retries phase-locked to the shared NACK burst that
// triggered them, so each wave of retransmits lands on the switch as
// one synchronized storm; the jitter decorrelates the ports, and the
// cap stops a deep retry chain from shifting into hour-long sleeps
// (attempt counts beyond 62 used to overflow the shifted duration
// entirely).
func retryDelay(base, max time.Duration, attempt int, rnd uint64) time.Duration {
	if base <= 0 || max <= 0 {
		return 0
	}
	if base > max {
		base = max
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d <<= 1
		if d <= 0 { // doubled past the int64 range
			d = max
			break
		}
	}
	if d > max {
		d = max
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rnd%uint64(half+1))
}
