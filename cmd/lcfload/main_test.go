package main

import (
	"errors"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestUsageErrorsExitTwo pins the exit-code contract: every invalid flag
// combination — including the flow-mode ones — exits 2 (usage error)
// before touching the network, never 1 (runtime failure).
func TestUsageErrorsExitTwo(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "lcfload")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building lcfload: %v\n%s", err, out)
	}
	cases := [][]string{
		{"-n", "0"},
		{"-load", "1.5"},
		{"-slots", "0"},
		{"-retries", "-1"},
		{"-pattern", "nonexistent"},
		{"-flows", "-1"},
		{"-flows", "10", "-flow-skew", "-0.5"},
		{"-flow-skew", "1.2"}, // flow-mode tuning without -flows
	}
	for _, args := range cases {
		err := exec.Command(bin, args...).Run()
		var ee *exec.ExitError
		if !errors.As(err, &ee) || ee.ExitCode() != 2 {
			t.Errorf("lcfload %v: %v, want exit status 2", args, err)
		}
	}
}
