package main

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// parseClassMix parses the -class-mix spec "w0,w1,..." into per-class
// traffic weights, indexed by class. The indexes must line up with the
// daemon's -classes order — the wire frame carries an index, not a
// name. Weights are relative (they need not sum to 1); at least one
// must be positive.
func parseClassMix(spec string) ([]float64, error) {
	parts := strings.Split(spec, ",")
	if len(parts) > 256 {
		return nil, fmt.Errorf("class-mix names %d classes, the wire class field carries at most 256", len(parts))
	}
	ws := make([]float64, len(parts))
	var sum float64
	for i, p := range parts {
		w, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("class-mix entry %q: %w", p, err)
		}
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("class-mix entry %q: weight must be finite and >= 0", p)
		}
		ws[i] = w
		sum += w
	}
	if sum <= 0 {
		return nil, errors.New("class-mix weights sum to zero")
	}
	return ws, nil
}

// classPicker draws class indexes with probability proportional to the
// parsed weights, from its own seeded stream so adding a class mix does
// not perturb the per-port arrival sequences or the retry jitter.
type classPicker struct {
	cum []float64 // cumulative weights; last entry is the total
	rng *jitter
}

func newClassPicker(ws []float64, seed uint64) *classPicker {
	p := &classPicker{cum: make([]float64, len(ws)), rng: newJitter(seed)}
	var sum float64
	for i, w := range ws {
		sum += w
		p.cum[i] = sum
	}
	return p
}

func (p *classPicker) pick() uint8 {
	// 53 uniform bits → [0, total), the float64-exact construction.
	r := float64(p.rng.next()>>11) / (1 << 53) * p.cum[len(p.cum)-1]
	for i, c := range p.cum {
		if r < c {
			return uint8(i)
		}
	}
	return uint8(len(p.cum) - 1)
}
