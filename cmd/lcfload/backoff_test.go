package main

import (
	"math"
	"testing"
	"time"
)

// TestRetryDelayEnvelope pins the backoff contract: the delay before
// the attempt-th retry is drawn from [d/2, d] where d is the capped
// exponential min(base<<(attempt-1), max). The old code computed the
// bare shift with no cap and no jitter, so every port that shared a
// NACK burst retried in lockstep and deep chains slept for hours.
func TestRetryDelayEnvelope(t *testing.T) {
	const base = 2 * time.Millisecond
	const max = 250 * time.Millisecond
	j := newJitter(7)
	for attempt := 1; attempt <= 64; attempt++ {
		want := base << (attempt - 1)
		if attempt >= 8 || want > max || want <= 0 { // 2ms<<7 = 256ms > cap
			want = max
		}
		for i := 0; i < 100; i++ {
			got := retryDelay(base, max, attempt, j.next())
			if got < want/2 || got > want {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, got, want/2, want)
			}
		}
	}
}

// TestRetryDelayNoOverflow drives the attempt count far past the
// 62-shift mark where the pre-fix doubling wrapped negative.
func TestRetryDelayNoOverflow(t *testing.T) {
	const max = time.Second
	for _, attempt := range []int{62, 63, 64, 100, 1 << 20, math.MaxInt} {
		d := retryDelay(time.Millisecond, max, attempt, 0xDEADBEEF)
		if d <= 0 || d > max {
			t.Fatalf("attempt %d: delay %v outside (0, %v]", attempt, d, max)
		}
	}
}

// TestRetryDelayDeterministic: the same draw yields the same delay, so
// a seeded run's backoff schedule is reproducible.
func TestRetryDelayDeterministic(t *testing.T) {
	for attempt := 1; attempt <= 10; attempt++ {
		a := retryDelay(2*time.Millisecond, 250*time.Millisecond, attempt, 0x12345678)
		b := retryDelay(2*time.Millisecond, 250*time.Millisecond, attempt, 0x12345678)
		if a != b {
			t.Fatalf("attempt %d: %v != %v for identical draws", attempt, a, b)
		}
	}
}

// TestRetryDelayJitterSpreads: distinct draws must actually spread
// within the envelope — a constant return would pass the envelope test
// while still phase-locking the retry storm the fix is about.
func TestRetryDelayJitterSpreads(t *testing.T) {
	j := newJitter(1)
	seen := make(map[time.Duration]bool)
	for i := 0; i < 200; i++ {
		seen[retryDelay(2*time.Millisecond, 250*time.Millisecond, 3, j.next())] = true
	}
	if len(seen) < 50 {
		t.Fatalf("200 draws produced only %d distinct delays; jitter is not spreading", len(seen))
	}
}

func TestRetryDelayEdgeCases(t *testing.T) {
	if d := retryDelay(0, time.Second, 3, 1); d != 0 {
		t.Fatalf("zero base: got %v, want 0", d)
	}
	if d := retryDelay(time.Second, 0, 3, 1); d != 0 {
		t.Fatalf("zero max: got %v, want 0", d)
	}
	// base above max clamps to max rather than inverting the envelope.
	d := retryDelay(time.Second, time.Millisecond, 1, 42)
	if d < time.Millisecond/2 || d > time.Millisecond {
		t.Fatalf("base>max: got %v, want within [%v, %v]", d, time.Millisecond/2, time.Millisecond)
	}
}

// TestJitterConcurrent exercises the lock-free stream under the race
// detector the way the retransmit timers and redial loops share it.
func TestJitterConcurrent(t *testing.T) {
	j := newJitter(99)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 1000; i++ {
				j.next()
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
