package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkEngineSlotPipelinedLCFRRN256-8  1000  123456 ns/op  0 B/op  0 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.Name != "BenchmarkEngineSlotPipelinedLCFRRN256" || r.GoMaxProcs != 8 {
		t.Fatalf("name=%q gomaxprocs=%d", r.Name, r.GoMaxProcs)
	}
	if r.Iterations != 1000 || r.NsPerOp != 123456 || *r.BytesPerOp != 0 || *r.AllocsPerOp != 0 {
		t.Fatalf("parsed %+v", r)
	}

	// GOMAXPROCS=1 runs carry no suffix; the field stays zero (omitted in
	// the JSON) and a trailing -word that is not a number is part of the
	// name, not a parallelism marker.
	r, ok = parseLine("BenchmarkFoo  52  9.5 ns/op")
	if !ok || r.Name != "BenchmarkFoo" || r.GoMaxProcs != 0 || r.NsPerOp != 9.5 {
		t.Fatalf("parsed %+v ok=%v", r, ok)
	}
	r, ok = parseLine("BenchmarkFoo/sub-case  52  9.5 ns/op")
	if !ok || r.Name != "BenchmarkFoo/sub-case" || r.GoMaxProcs != 0 {
		t.Fatalf("parsed %+v ok=%v", r, ok)
	}

	if _, ok := parseLine("Benchmark nonsense line"); ok {
		t.Fatal("garbage parsed")
	}
}

func TestCollapseMin(t *testing.T) {
	in := []Result{
		{Name: "A", NsPerOp: 10},
		{Name: "B", NsPerOp: 5},
		{Name: "A", NsPerOp: 7},
		{Name: "A", NsPerOp: 12},
	}
	out := collapseMin(in)
	if len(out) != 2 || out[0].Name != "A" || out[0].NsPerOp != 7 || out[1].Name != "B" {
		t.Fatalf("collapsed to %+v", out)
	}
}
