// Command benchjson converts `go test -bench` output into a
// machine-readable JSON document, so benchmark results can be recorded
// under results/ and diffed across PRs without parsing free text.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson [-o out.json] [-note "..."]
//
// It reads benchmark result lines from stdin (everything else — the
// goos/goarch/pkg header, PASS/ok trailers, narrator output — passes
// through to the "context" fields or is ignored) and writes a JSON
// object with one entry per benchmark. ns/op is mandatory on every
// line; B/op and allocs/op appear when the run used -benchmem.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// GoMaxProcs is the -N suffix go test appends to every benchmark name
	// when GOMAXPROCS > 1. It matters for the pipelined/sharded engine
	// tiers, whose numbers are only comparable at equal parallelism;
	// omitted when absent (GOMAXPROCS=1 runs carry no suffix).
	GoMaxProcs  int     `json:"gomaxprocs,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Note    string   `json:"note,omitempty"`
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	note := flag.String("note", "", "free-form provenance note recorded in the document")
	min := flag.Bool("min", false, "collapse repeated names (-count=N runs) to the minimum ns/op line")
	flag.Parse()

	rep := Report{Note: *note}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			// Multi-package runs emit several pkg headers; keep the first.
			if rep.Pkg == "" {
				rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			}
		case strings.HasPrefix(line, "cpu:"):
			if rep.CPU == "" {
				rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			}
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *min {
		rep.Results = collapseMin(rep.Results)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// collapseMin reduces repeated benchmark names — a -count=N run — to one
// entry each, keeping the line with the lowest ns/op (the comparable
// statistic on a machine with one-sided scheduling jitter). First-seen
// order is preserved.
func collapseMin(in []Result) []Result {
	var out []Result
	pos := make(map[string]int)
	for _, r := range in {
		if i, ok := pos[r.Name]; ok {
			if r.NsPerOp < out[i].NsPerOp {
				out[i] = r
			}
			continue
		}
		pos[r.Name] = len(out)
		out = append(out, r)
	}
	return out
}

// parseLine parses one benchmark line, e.g.
//
//	BenchmarkSchedulerDecision/lcf_central/n64-8  270  4117 ns/op  0 B/op  0 allocs/op
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	name := f[0]
	// Split off the GOMAXPROCS suffix: Benchmark.../n64-8 → Benchmark.../n64
	// with GoMaxProcs 8, so equal-parallelism runs diff by name alone.
	procs := 0
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil && p > 0 {
			name, procs = name[:i], p
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters, GoMaxProcs: procs}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, unit := f[i], f[i+1]
		switch unit {
		case "ns/op":
			if r.NsPerOp, err = strconv.ParseFloat(v, 64); err != nil {
				return Result{}, false
			}
			seen = true
		case "B/op":
			if b, err := strconv.ParseInt(v, 10, 64); err == nil {
				r.BytesPerOp = &b
			}
		case "allocs/op":
			if a, err := strconv.ParseInt(v, 10, 64); err == nil {
				r.AllocsPerOp = &a
			}
		}
	}
	return r, seen
}
