// Command lcfsim regenerates the simulation side of the paper's
// evaluation: Figure 12a (mean queuing delay vs load), Figure 12b (delay
// relative to the output-buffered switch), and the extension experiments
// (saturation throughput, iteration ablation, traffic-pattern sweeps).
//
// Usage:
//
//	lcfsim -figure 12a                # the headline figure
//	lcfsim -figure 12b -csv           # relative latencies, CSV for plotting
//	lcfsim -figure throughput         # saturation throughput per scheduler
//	lcfsim -figure iters              # lcf_dist/pim/islip vs iteration count
//	lcfsim -figure rrdensity          # Section 3 fairness/latency ablation
//	lcfsim -figure bursty|hotspot|diagonal
//	lcfsim -schedulers lcf_central,outbuf -loads 0.5,0.9,0.99
//
// All runs are deterministic for a given -seed. -measure trades accuracy
// for time; the defaults reproduce stable curves in roughly a minute on a
// laptop.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	lcf "repro"
	"repro/internal/asciiplot"
	"repro/internal/metrics"
)

func main() {
	var (
		figure     = flag.String("figure", "12a", "what to regenerate: 12a, 12b, throughput, iters, rrdensity, bursty, hotspot, diagonal")
		n          = flag.Int("n", 16, "switch port count")
		schedulers = flag.String("schedulers", "", "comma-separated scheduler list (default: the Figure 12 set); the pseudo-schedulers outbuf and lcf_cicq select switch organizations")
		dp         = flag.String("datapath", lcf.DatapathVOQ, "switch datapath organization: "+strings.Join(lcf.DatapathNames(), " or ")+"; cicq sweeps the crosspoint-buffered switch (shorthand for -schedulers lcf_cicq)")
		loads      = flag.String("loads", "", "comma-separated load list (default: the Figure 12 grid)")
		iterations = flag.Int("iterations", 4, "iterations for the iterative schedulers")
		seed       = flag.Uint64("seed", 1, "base RNG seed")
		repeats    = flag.Int("repeat", 1, "independent replications per point")
		warmup     = flag.Int64("warmup", 10000, "warmup slots (not measured)")
		measure    = flag.Int64("measure", 50000, "measured slots")
		workers    = flag.Int("workers", 0, "parallel simulations (0 = all CPUs)")
		csv        = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		speedup    = flag.Int("speedup", 1, "fabric speedup (CIOQ extension)")
		pattern    = flag.String("pattern", "", "traffic pattern: uniform, hotspot, diagonal, logdiagonal, bursty")
		plot       = flag.Bool("plot", false, "render 12a/12b as an ASCII chart instead of a table")
		jsonOut    = flag.Bool("json", false, "emit JSON for figures 12a/12b")
	)
	flag.Parse()

	// Validate flags up front with usage exit code 2: these used to be
	// accepted silently (negative -workers ran serially, bad -pattern
	// failed deep inside the sweep) instead of failing fast.
	if err := checkFlags(*workers, *speedup, *n, *iterations, *repeats, *pattern, *dp); err != nil {
		usage("%v", err)
	}
	if *dp == lcf.DatapathCICQ && *schedulers != "" {
		usage("-datapath=cicq is shorthand for -schedulers %s; to compare organizations, list %s alongside the schedulers instead", lcf.CICQName, lcf.CICQName)
	}

	if *jsonOut {
		*csv = false
	}

	cfg := lcf.SweepConfig{
		N:            *n,
		Iterations:   *iterations,
		Seed:         *seed,
		Repeats:      *repeats,
		WarmupSlots:  *warmup,
		MeasureSlots: *measure,
		Workers:      *workers,
		Speedup:      *speedup,
		Pattern:      *pattern,
	}
	if *schedulers != "" {
		cfg.Schedulers = strings.Split(*schedulers, ",")
	}
	if *dp == lcf.DatapathCICQ {
		// Sweep the CICQ organization against the reference switch, the
		// same comparison shape as the default Figure 12 set.
		cfg.Schedulers = []string{lcf.CICQName, lcf.OutbufName}
	}
	if *loads != "" {
		for _, f := range strings.Split(*loads, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				fatal("bad load %q: %v", f, err)
			}
			cfg.Loads = append(cfg.Loads, v)
		}
	}

	if *plot {
		switch *figure {
		case "12a", "12b":
			runDelayPlot(cfg, *figure == "12b")
			return
		default:
			fatal("-plot supports figures 12a and 12b")
		}
	}

	emitJSON = *jsonOut

	switch *figure {
	case "12a":
		runDelaySweep(cfg, *csv, false)
	case "12b":
		runDelaySweep(cfg, *csv, true)
	case "throughput":
		runThroughput(cfg, *csv)
	case "iters":
		runIterAblation(cfg, *csv)
	case "rrdensity":
		runRRDensity(cfg, *csv)
	case "fairness":
		runFairness(cfg)
	case "speedup":
		runSpeedupAblation(cfg)
	case "hist":
		runHistogram(cfg)
	case "mcast":
		runMulticast(cfg)
	case "pipeline":
		runPipelineAblation(cfg)
	case "choice":
		runChoiceHypothesis(cfg)
	case "pointer":
		cfg.Schedulers = []string{"rrm", "islip", "firm"}
		runDelaySweep(cfg, *csv, false)
	case "unbalanced":
		runUnbalanced(cfg)
	case "crossover":
		runCrossovers(cfg)
	case "bursty", "hotspot", "diagonal":
		cfg.Pattern = *figure
		runDelaySweep(cfg, *csv, false)
	default:
		fatal("unknown -figure %q", *figure)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lcfsim: "+format+"\n", args...)
	os.Exit(1)
}

// knownPatterns mirrors the patterns internal/experiment accepts; keep the
// two in sync (TestCheckFlags pins the rejection behaviour).
var knownPatterns = map[string]bool{
	"uniform": true, "hotspot": true, "diagonal": true,
	"logdiagonal": true, "bursty": true, "unbalanced": true,
}

func patternList() string {
	names := make([]string, 0, len(knownPatterns))
	for p := range knownPatterns {
		names = append(names, p)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// checkFlags rejects flag combinations that would otherwise be accepted
// silently or fail deep inside a run.
func checkFlags(workers, speedup, n, iterations, repeats int, pattern, dp string) error {
	if workers < 0 {
		return fmt.Errorf("-workers must be ≥ 0 (0 = all CPUs), got %d", workers)
	}
	if known := lcf.DatapathNames(); !slicesContains(known, dp) {
		return fmt.Errorf("unknown -datapath %q (known: %s)", dp, strings.Join(known, ", "))
	}
	if speedup < 1 {
		return fmt.Errorf("-speedup must be ≥ 1 (1 = no speedup), got %d", speedup)
	}
	if pattern != "" && !knownPatterns[pattern] {
		return fmt.Errorf("unknown -pattern %q (known: %s)", pattern, patternList())
	}
	if n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", n)
	}
	if iterations < 1 {
		return fmt.Errorf("-iterations must be ≥ 1, got %d", iterations)
	}
	if repeats < 1 {
		return fmt.Errorf("-repeat must be ≥ 1, got %d", repeats)
	}
	return nil
}

func slicesContains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// usage reports a flag error and exits with the conventional usage status 2.
func usage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lcfsim: "+format+"\n", args...)
	os.Exit(2)
}

// emitJSON switches the 12a/12b emitters to JSON output.
var emitJSON bool

func emit(cfg lcf.SweepConfig, grid map[string][]lcf.SweepPoint, csv bool, value func(lcf.SweepPoint) float64) {
	if csv {
		fmt.Print(lcf.FormatSweepCSV(cfg, grid, value))
	} else {
		fmt.Print(lcf.FormatSweepTable(cfg, grid, value))
	}
}

func runDelayPlot(cfg lcf.SweepConfig, relative bool) {
	res, err := lcf.Sweep(cfg)
	if err != nil {
		fatal("%v", err)
	}
	grid := res.Points
	title := fmt.Sprintf("Figure 12a — mean queuing delay [slots] vs load (n=%d, log y)", res.Cfg.N)
	yMax := 0.0
	if relative {
		grid, err = res.RelativeTo(lcf.OutbufName)
		if err != nil {
			fatal("%v", err)
		}
		title = fmt.Sprintf("Figure 12b — latency relative to output buffering (n=%d)", res.Cfg.N)
		yMax = 6 // the paper's Figure 12b tops out at 3; cap runaway fifo
	}
	var series []asciiplot.Series
	for _, name := range res.Cfg.Schedulers {
		pts, ok := grid[name]
		if !ok {
			continue
		}
		s := asciiplot.Series{Name: name}
		for _, p := range pts {
			s.X = append(s.X, p.Load)
			s.Y = append(s.Y, p.MeanDelay)
		}
		series = append(series, s)
	}
	asciiplot.SortSeriesByFinalY(series)
	out, err := asciiplot.Render(asciiplot.Config{
		Width: 72, Height: 24, LogY: !relative, YMax: yMax, Title: title,
	}, series)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Print(out)
}

func runDelaySweep(cfg lcf.SweepConfig, csv, relative bool) {
	res, err := lcf.Sweep(cfg)
	if err != nil {
		fatal("%v", err)
	}
	grid := res.Points
	title := "Figure 12a — mean queuing delay [slots] vs load"
	if cfg.Pattern != "" && cfg.Pattern != "uniform" {
		title = fmt.Sprintf("Extension — mean queuing delay [slots] vs load, %s traffic", cfg.Pattern)
	}
	if relative {
		grid, err = res.RelativeTo(lcf.OutbufName)
		if err != nil {
			fatal("%v (add outbuf to -schedulers for figure 12b)", err)
		}
		title = "Figure 12b — latency relative to output buffering"
	}
	if emitJSON {
		out, err := lcf.FormatSweepJSON(res.Cfg, grid)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Print(out)
		return
	}
	if !csv {
		fmt.Printf("%s\n(n=%d, %s traffic, %d iterations, warmup %d, measured %d slots, seed %d, repeats %d)\n\n",
			title, res.Cfg.N, res.Cfg.Pattern, res.Cfg.Iterations, res.Cfg.WarmupSlots,
			res.Cfg.MeasureSlots, res.Cfg.Seed, res.Cfg.Repeats)
	}
	emit(res.Cfg, grid, csv, func(p lcf.SweepPoint) float64 { return p.MeanDelay })
}

func runThroughput(cfg lcf.SweepConfig, csv bool) {
	cfg.Loads = []float64{1.0}
	res, err := lcf.Sweep(cfg)
	if err != nil {
		fatal("%v", err)
	}
	if !csv {
		fmt.Printf("Extension — saturation throughput (offered load 1.0, n=%d, %s traffic)\n\n",
			res.Cfg.N, res.Cfg.Pattern)
	}
	emit(res.Cfg, res.Points, csv, func(p lcf.SweepPoint) float64 { return p.Throughput })
}

func runIterAblation(cfg lcf.SweepConfig, csv bool) {
	if len(cfg.Loads) == 0 {
		cfg.Loads = []float64{0.95}
	}
	if len(cfg.Schedulers) == 0 {
		cfg.Schedulers = []string{"lcf_dist", "lcf_dist_rr", "pim", "islip"}
	}
	fmt.Printf("Extension — mean delay vs iteration count (load %v, n=%d)\n\n", cfg.Loads, cfg.N)
	fmt.Printf("%-6s", "iters")
	for _, s := range cfg.Schedulers {
		fmt.Printf(" %14s", s)
	}
	fmt.Println()
	for _, iters := range []int{1, 2, 3, 4, 6, 8} {
		c := cfg
		c.Iterations = iters
		res, err := lcf.Sweep(c)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("%-6d", iters)
		for _, s := range c.Schedulers {
			fmt.Printf(" %14.3f", res.Points[s][0].MeanDelay)
		}
		fmt.Println()
	}
	_ = csv
}

func runFairness(cfg lcf.SweepConfig) {
	load := 1.0
	if len(cfg.Loads) > 0 {
		load = cfg.Loads[0]
	}
	cfg.Loads = nil
	pts, err := lcf.MeasureFairness(cfg, load)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("Extension — measured fairness at load %.2f (Section 3's guarantee, observed)\n\n", load)
	fmt.Print(lcf.FormatFairness(cfg, pts))
}

func runSpeedupAblation(cfg lcf.SweepConfig) {
	if len(cfg.Schedulers) == 0 {
		cfg.Schedulers = []string{"lcf_central_rr", "islip", "outbuf"}
	}
	if len(cfg.Loads) == 0 {
		cfg.Loads = []float64{0.9, 0.95, 0.99}
	}
	fmt.Printf("Extension — fabric speedup (CIOQ): mean delay [slots], n=%d\n\n", cfg.N)
	fmt.Printf("%-8s", "speedup")
	for _, s := range cfg.Schedulers {
		for _, l := range cfg.Loads {
			fmt.Printf(" %10s@%.2f", s, l)
		}
	}
	fmt.Println()
	for _, sp := range []int{1, 2, 3} {
		c := cfg
		c.Speedup = sp
		res, err := lcf.Sweep(c)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("%-8d", sp)
		for _, s := range c.Schedulers {
			for li := range c.Loads {
				fmt.Printf(" %15.3f", res.Points[s][li].MeanDelay)
			}
		}
		fmt.Println()
	}
}

func runHistogram(cfg lcf.SweepConfig) {
	load := 0.9
	if len(cfg.Loads) > 0 {
		load = cfg.Loads[0]
	}
	if len(cfg.Schedulers) == 0 {
		cfg.Schedulers = []string{"lcf_central", "lcf_central_rr", "pim", "islip"}
		cfg.Schedulers = append(cfg.Schedulers, lcf.OutbufName)
	}
	fmt.Printf("Extension — delay distribution at load %.2f (n=%d)\n\n", load, cfg.N)
	fmt.Printf("%-20s %8s %8s %8s %8s %10s\n", "scheduler", "mean", "p50", "p95", "p99", "max")
	for _, name := range cfg.Schedulers {
		var s lcf.Scheduler
		var err error
		if name != lcf.OutbufName {
			s, err = lcf.NewScheduler(name, cfg.N, lcf.Options{Iterations: cfg.Iterations, Seed: cfg.Seed})
			if err != nil {
				fatal("%v", err)
			}
		}
		res, err := lcf.Simulate(lcf.SimConfig{
			N: cfg.N, Scheduler: s, Load: load, Seed: cfg.Seed,
			WarmupSlots: cfg.WarmupSlots, MeasureSlots: cfg.MeasureSlots,
			HistogramBuckets: 4096,
		})
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("%-20s %8.2f %8s %8s %8s %10.0f\n", name,
			res.Delay.Mean(), histQuantile(res.Hist, 0.5), histQuantile(res.Hist, 0.95),
			histQuantile(res.Hist, 0.99), res.Delay.Max())
	}
}

// histQuantile renders one delay quantile for the distribution table.
// A quantile that lands among overflow observations — delays beyond the
// histogram's bucket range — used to print as the top bucket value,
// which made a saturated scheduler's p99 read as a clean 4095 slots.
// It prints as an explicit lower bound instead.
func histQuantile(h *metrics.Histogram, q float64) string {
	v, ok := h.QuantileOK(q)
	if !ok {
		return fmt.Sprintf(">%d", v)
	}
	return fmt.Sprintf("%d", v)
}

func runUnbalanced(cfg lcf.SweepConfig) {
	// Sweep the unbalance factor at full load and report throughput —
	// the benchmark where round-robin schedulers dip in the middle.
	if len(cfg.Schedulers) == 0 {
		cfg.Schedulers = []string{"lcf_central_rr", "lcf_dist_rr", "islip", "wfront"}
	}
	cfg.Loads = []float64{1.0}
	cfg.Pattern = "unbalanced"
	fmt.Printf("Extension — unbalanced traffic (load 1.0, n=%d): throughput vs unbalance w\n\n", cfg.N)
	fmt.Printf("%-6s", "w")
	for _, s := range cfg.Schedulers {
		fmt.Printf(" %14s", s)
	}
	fmt.Println()
	for _, w := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		c := cfg
		c.Unbalance = w
		res, err := lcf.Sweep(c)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("%-6.2f", w)
		for _, s := range c.Schedulers {
			fmt.Printf(" %14.3f", res.Points[s][0].Throughput)
		}
		fmt.Println()
	}
}

func runCrossovers(cfg lcf.SweepConfig) {
	res, err := lcf.Sweep(cfg)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("Crossover loads (first load from which A stays below B), n=%d:\n\n", cfg.N)
	pairs := [][2]string{
		{"lcf_central_rr", "lcf_central"},
		{"lcf_dist_rr", "lcf_dist"},
		{"lcf_dist_rr", "pim"},
		{"pim", "lcf_dist"},
	}
	for _, p := range pairs {
		if load, ok := res.FindCrossover(p[0], p[1]); ok {
			fmt.Printf("  %-16s crosses below %-16s at load %.3f\n", p[0], p[1], load)
		} else {
			fmt.Printf("  %-16s never stays below %-16s in this grid\n", p[0], p[1])
		}
	}
}

func runChoiceHypothesis(cfg lcf.SweepConfig) {
	if len(cfg.Loads) == 0 {
		cfg.Loads = []float64{0.8, 0.9, 0.95, 0.97, 0.99}
	}
	fmt.Printf("Extension — the Section 6.3 crossover hypothesis, measured (n=%d)\n", cfg.N)
	fmt.Printf("\"the round robin algorithm … is leveling the lengths of the VOQs\n")
	fmt.Printf("thereby maintaining choice by avoiding the VOQs to drain\"\n\n")
	fmt.Printf("%-7s %22s %22s %22s\n", "load",
		"choice (occ. VOQs/input)", "VOQ length spread", "mean delay")
	fmt.Printf("%-7s %11s %10s %11s %10s %11s %10s\n", "",
		"pure", "+rr", "pure", "+rr", "pure", "+rr")
	for _, load := range cfg.Loads {
		row := make(map[string]*lcf.SimResult)
		for _, name := range []string{"lcf_central", "lcf_central_rr"} {
			s, err := lcf.NewScheduler(name, cfg.N, lcf.Options{Seed: cfg.Seed})
			if err != nil {
				fatal("%v", err)
			}
			res, err := lcf.Simulate(lcf.SimConfig{
				N: cfg.N, Scheduler: s, Load: load, Seed: cfg.Seed,
				WarmupSlots: cfg.WarmupSlots, MeasureSlots: cfg.MeasureSlots,
			})
			if err != nil {
				fatal("%v", err)
			}
			row[name] = res
		}
		p, r := row["lcf_central"], row["lcf_central_rr"]
		fmt.Printf("%-7.2f %11.2f %10.2f %11.2f %10.2f %11.2f %10.2f\n", load,
			p.Choice.Mean(), r.Choice.Mean(),
			p.VOQSpread.Mean(), r.VOQSpread.Mean(),
			p.Delay.Mean(), r.Delay.Mean())
	}
}

func runPipelineAblation(cfg lcf.SweepConfig) {
	if len(cfg.Loads) == 0 {
		cfg.Loads = []float64{0.5, 0.8, 0.95}
	}
	schedName := "lcf_central_rr"
	if len(cfg.Schedulers) > 0 {
		schedName = cfg.Schedulers[0]
	}
	fmt.Printf("Extension — scheduling pipeline depth (%s, n=%d): mean delay [slots]\n", schedName, cfg.N)
	fmt.Printf("the paper, Section 1: pipelining relaxes the timing budget but 'the\n")
	fmt.Printf("scheduling latency adds to the overall switch forwarding latency'\n\n")
	fmt.Printf("%-7s", "depth")
	for _, l := range cfg.Loads {
		fmt.Printf(" %12.2f", l)
	}
	fmt.Println()
	for _, depth := range []int{1, 2, 3, 4} {
		fmt.Printf("%-7d", depth)
		for _, load := range cfg.Loads {
			s, err := lcf.NewScheduler(schedName, cfg.N, lcf.Options{Iterations: cfg.Iterations, Seed: cfg.Seed})
			if err != nil {
				fatal("%v", err)
			}
			res, err := lcf.Simulate(lcf.SimConfig{
				N: cfg.N, Scheduler: s, Load: load, Seed: cfg.Seed,
				PipelineDepth: depth,
				WarmupSlots:   cfg.WarmupSlots, MeasureSlots: cfg.MeasureSlots,
			})
			if err != nil {
				fatal("%v", err)
			}
			fmt.Printf(" %12.3f", res.Delay.Mean())
		}
		fmt.Println()
	}
}

func runMulticast(cfg lcf.SweepConfig) {
	fmt.Printf("Extension — multicast scheduling policies (n=%d, Section 4.3 / ref [11])\n", cfg.N)
	fmt.Printf("cell load per input × fanout = offered copies per output\n\n")
	fmt.Printf("%-14s %8s %8s %16s %12s %10s\n",
		"policy", "load", "fanout", "copies/out/slot", "cell delay", "dropped")
	for _, fanout := range []int{2, 4, 8} {
		for _, p := range []lcf.MulticastPolicy{lcf.NoSplitting, lcf.FewestFirst, lcf.LargestFirst} {
			load := 0.9 / float64(fanout) // offered copy load 0.9 per output
			res, err := lcf.SimulateMulticast(lcf.MulticastConfig{
				N: cfg.N, Policy: p, Load: load, Fanout: fanout, Seed: cfg.Seed,
				Warmup: cfg.WarmupSlots, Measure: cfg.MeasureSlots,
			})
			if err != nil {
				fatal("%v", err)
			}
			fmt.Printf("%-14s %8.3f %8d %16.3f %12.2f %10d\n",
				p, load, fanout, res.CopiesPerOutputSlot, res.CellDelay, res.Dropped)
		}
	}
}

func runRRDensity(cfg lcf.SweepConfig, csv bool) {
	cfg.Schedulers = []string{"lcf_central", "lcf_central_rr", "lcf_central_rrpre"}
	if len(cfg.Loads) == 0 {
		cfg.Loads = []float64{0.5, 0.8, 0.9, 0.95, 0.99, 1.0}
	}
	res, err := lcf.Sweep(cfg)
	if err != nil {
		fatal("%v", err)
	}
	if !csv {
		fmt.Printf("Extension — round-robin density ablation (Section 3: fairness range 0..b/n)\n")
		fmt.Printf("mean delay [slots]; guarantee per pair: none / b/n² / ≈b/n\n\n")
	}
	emit(res.Cfg, res.Points, csv, func(p lcf.SweepPoint) float64 { return p.MeanDelay })
}
