package main

import (
	"strings"
	"testing"

	lcf "repro"
)

func TestCheckFlags(t *testing.T) {
	ok := func(workers, speedup, n, iters, repeats int, pattern, dp string) {
		t.Helper()
		if err := checkFlags(workers, speedup, n, iters, repeats, pattern, dp); err != nil {
			t.Errorf("checkFlags(%d,%d,%d,%d,%d,%q,%q) = %v, want nil",
				workers, speedup, n, iters, repeats, pattern, dp, err)
		}
	}
	bad := func(workers, speedup, n, iters, repeats int, pattern, dp, wantSub string) {
		t.Helper()
		err := checkFlags(workers, speedup, n, iters, repeats, pattern, dp)
		if err == nil {
			t.Errorf("checkFlags(%d,%d,%d,%d,%d,%q,%q) accepted, want error",
				workers, speedup, n, iters, repeats, pattern, dp)
			return
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("error %q does not mention %q", err, wantSub)
		}
	}

	ok(0, 1, 16, 4, 1, "", lcf.DatapathVOQ)
	ok(8, 2, 16, 4, 3, "bursty", lcf.DatapathVOQ)
	for p := range knownPatterns {
		ok(0, 1, 16, 4, 1, p, lcf.DatapathVOQ)
	}
	for _, dp := range lcf.DatapathNames() {
		ok(0, 1, 16, 4, 1, "", dp)
	}

	bad(-1, 1, 16, 4, 1, "", lcf.DatapathVOQ, "-workers")
	bad(0, 0, 16, 4, 1, "", lcf.DatapathVOQ, "-speedup")
	bad(0, -3, 16, 4, 1, "", lcf.DatapathVOQ, "-speedup")
	bad(0, 1, 16, 4, 1, "nonsense", lcf.DatapathVOQ, "-pattern")
	bad(0, 1, 0, 4, 1, "", lcf.DatapathVOQ, "-n")
	bad(0, 1, 16, 0, 1, "", lcf.DatapathVOQ, "-iterations")
	bad(0, 1, 16, 4, 0, "", lcf.DatapathVOQ, "-repeat")
	bad(0, 1, 16, 4, 1, "", "crossbarn't", "-datapath")
	bad(0, 1, 16, 4, 1, "", "", "-datapath")
}

// TestCICQSchedulerList pins the -datapath=cicq shorthand: it must expand
// to a sweep the harness accepts, comparing the crosspoint-buffered
// organization against the output-buffered reference.
func TestCICQSchedulerList(t *testing.T) {
	cfg := lcf.SweepConfig{
		N: 4, Loads: []float64{0.1},
		Schedulers:  []string{lcf.CICQName, lcf.OutbufName},
		WarmupSlots: 1, MeasureSlots: 2,
	}
	res, err := lcf.Sweep(cfg)
	if err != nil {
		t.Fatalf("cicq sweep rejected: %v", err)
	}
	for _, name := range []string{lcf.CICQName, lcf.OutbufName} {
		if len(res.Points[name]) != 1 {
			t.Errorf("scheduler %q: got %d points, want 1", name, len(res.Points[name]))
		}
	}
}

// TestKnownPatternsMatchSimulator keeps the CLI's up-front pattern list in
// sync with what a sweep actually accepts: every known pattern must
// survive config normalization end-to-end.
func TestKnownPatternsMatchSimulator(t *testing.T) {
	for p := range knownPatterns {
		cfg := lcf.SweepConfig{
			N: 4, Pattern: p, Loads: []float64{0.1},
			Schedulers: []string{"islip"}, WarmupSlots: 1, MeasureSlots: 2,
		}
		if _, err := lcf.Sweep(cfg); err != nil {
			t.Errorf("pattern %q rejected by the sweep harness: %v", p, err)
		}
	}
}
