package main

import (
	"strings"
	"testing"

	lcf "repro"
)

func TestCheckFlags(t *testing.T) {
	ok := func(workers, speedup, n, iters, repeats int, pattern string) {
		t.Helper()
		if err := checkFlags(workers, speedup, n, iters, repeats, pattern); err != nil {
			t.Errorf("checkFlags(%d,%d,%d,%d,%d,%q) = %v, want nil",
				workers, speedup, n, iters, repeats, pattern, err)
		}
	}
	bad := func(workers, speedup, n, iters, repeats int, pattern, wantSub string) {
		t.Helper()
		err := checkFlags(workers, speedup, n, iters, repeats, pattern)
		if err == nil {
			t.Errorf("checkFlags(%d,%d,%d,%d,%d,%q) accepted, want error",
				workers, speedup, n, iters, repeats, pattern)
			return
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("error %q does not mention %q", err, wantSub)
		}
	}

	ok(0, 1, 16, 4, 1, "")
	ok(8, 2, 16, 4, 3, "bursty")
	for p := range knownPatterns {
		ok(0, 1, 16, 4, 1, p)
	}

	bad(-1, 1, 16, 4, 1, "", "-workers")
	bad(0, 0, 16, 4, 1, "", "-speedup")
	bad(0, -3, 16, 4, 1, "", "-speedup")
	bad(0, 1, 16, 4, 1, "nonsense", "-pattern")
	bad(0, 1, 0, 4, 1, "", "-n")
	bad(0, 1, 16, 0, 1, "", "-iterations")
	bad(0, 1, 16, 4, 0, "", "-repeat")
}

// TestKnownPatternsMatchSimulator keeps the CLI's up-front pattern list in
// sync with what a sweep actually accepts: every known pattern must
// survive config normalization end-to-end.
func TestKnownPatternsMatchSimulator(t *testing.T) {
	for p := range knownPatterns {
		cfg := lcf.SweepConfig{
			N: 4, Pattern: p, Loads: []float64{0.1},
			Schedulers: []string{"islip"}, WarmupSlots: 1, MeasureSlots: 2,
		}
		if _, err := lcf.Sweep(cfg); err != nil {
			t.Errorf("pattern %q rejected by the sweep harness: %v", p, err)
		}
	}
}
