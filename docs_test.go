package lcf_test

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links and images: [text](target) /
// ![alt](target). Reference-style links and autolinks are out of scope —
// the repository's documents don't use them.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// TestMarkdownLinks fails if any markdown document in the repository
// links to a file that does not exist. External links (http, https,
// mailto) are not fetched; pure-fragment links (#section) are skipped.
// This is what keeps OBSERVABILITY.md, README.md and DESIGN.md honest as
// files move: CI runs it in the docs job.
func TestMarkdownLinks(t *testing.T) {
	var docs []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			docs = append(docs, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) == 0 {
		t.Fatal("no markdown files found; test running from the wrong directory?")
	}

	for _, doc := range docs {
		raw, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, target := range linkTargets(string(raw)) {
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			if target == "" { // pure fragment: #section
				continue
			}
			resolved := filepath.Join(filepath.Dir(doc), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s links to %s, which does not exist", doc, target)
			}
		}
	}
}

// linkTargets extracts link targets outside fenced code blocks (YAML and
// shell examples legitimately contain [x](y)-shaped text).
func linkTargets(doc string) []string {
	var targets []string
	inFence := false
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
			targets = append(targets, m[1])
		}
	}
	return targets
}
