package lcf_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// mdLink matches inline markdown links and images: [text](target) /
// ![alt](target). Reference-style links and autolinks are out of scope —
// the repository's documents don't use them.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// TestMarkdownLinks fails if any markdown document in the repository
// links to a file that does not exist. External links (http, https,
// mailto) are not fetched; pure-fragment links (#section) are skipped.
// This is what keeps OBSERVABILITY.md, README.md and DESIGN.md honest as
// files move: CI runs it in the docs job.
func TestMarkdownLinks(t *testing.T) {
	var docs []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			docs = append(docs, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) == 0 {
		t.Fatal("no markdown files found; test running from the wrong directory?")
	}

	for _, doc := range docs {
		raw, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, target := range linkTargets(string(raw)) {
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			if target == "" { // pure fragment: #section
				continue
			}
			resolved := filepath.Join(filepath.Dir(doc), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s links to %s, which does not exist", doc, target)
			}
		}
	}
}

// resultsRef matches any mention of a results/ JSON document, linked or
// merely backticked — EXPERIMENTS.md cites measurement records both ways.
var resultsRef = regexp.MustCompile(`results/[A-Za-z0-9_.-]+\.json`)

// TestExperimentsResultsExist holds EXPERIMENTS.md to a stronger
// standard than the link check: every results/*.json it mentions, in
// prose, backticks or links, must exist. A study whose measurement
// record was never committed (or was renamed away) fails here instead of
// silently pointing at vapor.
func TestExperimentsResultsExist(t *testing.T) {
	raw, err := os.ReadFile("EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	refs := resultsRef.FindAllString(string(raw), -1)
	if len(refs) == 0 {
		t.Fatal("EXPERIMENTS.md mentions no results/*.json records")
	}
	seen := map[string]bool{}
	for _, ref := range refs {
		if seen[ref] {
			continue
		}
		seen[ref] = true
		if _, err := os.Stat(ref); err != nil {
			t.Errorf("EXPERIMENTS.md references %s, which does not exist", ref)
		}
	}
}

// TestPackageDocs requires a real package comment on every package in
// the module: godoc is the first page a reader lands on, and a bare
// "Package x ..." stub (or nothing) there means the design lives only in
// scattered file comments. CI's docs job runs this next to the link
// check.
func TestPackageDocs(t *testing.T) {
	fset := token.NewFileSet()
	packageDirs := map[string]bool{}
	documentedDirs := map[string]bool{}
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" || d.Name() == "testdata" || d.Name() == "results" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			return err
		}
		dir := filepath.Dir(path)
		if f.Doc != nil {
			docText := strings.TrimSpace(f.Doc.Text())
			if len(docText) >= 60 { // a sentence, not a stub
				documentedDirs[dir] = true
			}
		}
		packageDirs[dir] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(packageDirs) < 10 {
		t.Fatalf("found only %d Go packages; test running from the wrong directory?", len(packageDirs))
	}
	var missing []string
	for dir := range packageDirs {
		if !documentedDirs[dir] {
			missing = append(missing, dir)
		}
	}
	sort.Strings(missing)
	for _, dir := range missing {
		t.Errorf("package in %s has no substantial package comment (want a doc comment of at least one full sentence on some file)", dir)
	}
}

// linkTargets extracts link targets outside fenced code blocks (YAML and
// shell examples legitimately contain [x](y)-shaped text).
func linkTargets(doc string) []string {
	var targets []string
	inFence := false
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
			targets = append(targets, m[1])
		}
	}
	return targets
}
