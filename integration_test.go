package lcf

import (
	"testing"
)

// These integration tests assert the *qualitative claims* of the paper's
// Section 6.3/7 on live simulations — the ordering of the Figure 12
// curves and the crossovers the text calls out. They use moderate
// simulation lengths: long enough that the orderings are stable across
// seeds (verified during development), short enough for CI.

// run simulates one (scheduler, load) cell and returns mean delay and
// throughput.
func runCell(t *testing.T, name string, load float64, seed uint64) (delay, throughput float64) {
	t.Helper()
	var s Scheduler
	if name != OutbufName {
		var err error
		s, err = NewScheduler(name, 16, Options{Iterations: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := Simulate(SimConfig{
		N: 16, Scheduler: s, Load: load, Seed: seed,
		WarmupSlots: 4000, MeasureSlots: 25000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Delay.Mean(), res.Counters.Throughput()
}

// TestClaimOutbufIsLowerEnvelope: "outbuf scheduling … shows the best
// performance" — every input-queued scheduler's delay is bounded below by
// the output-buffered switch at every load.
func TestClaimOutbufIsLowerEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, load := range []float64{0.5, 0.8, 0.95} {
		ob, _ := runCell(t, OutbufName, load, 11)
		for _, name := range Figure12Schedulers() {
			d, _ := runCell(t, name, load, 11)
			if d < ob*0.98 { // 2% tolerance for measurement noise
				t.Errorf("load %g: %s delay %.3f below outbuf %.3f", load, name, d, ob)
			}
		}
	}
}

// TestClaimLCFCentralBeatsOtherSchedulers: "lcf_central … performs
// significantly better than any other scheduler examined", and at high
// load runs at roughly 1.4× the output-buffered latency.
func TestClaimLCFCentralBeatsOtherSchedulers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	const load = 0.9
	lcfC, _ := runCell(t, "lcf_central", load, 13)
	for _, name := range []string{"pim", "islip", "wfront", "fifo", "lcf_dist"} {
		d, _ := runCell(t, name, load, 13)
		if d <= lcfC {
			t.Errorf("load %g: %s delay %.3f not above lcf_central %.3f", load, name, d, lcfC)
		}
	}
	ob, _ := runCell(t, OutbufName, load, 13)
	ratio := lcfC / ob
	if ratio < 1.0 || ratio > 2.0 {
		t.Errorf("lcf_central/outbuf ratio %.2f at load %g; paper reports ≈1.4 at high load", ratio, load)
	}
}

// TestClaimRRCrossover: "the latencies for lcf_central_rr are only
// slightly worse than … lcf_central up to a load of about 0.9. If the
// load is further increased, the latencies for lcf_central_rr suddenly
// become significantly less" — and the same change of trend for the
// distributed pair.
func TestClaimRRCrossover(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// Below the crossover: the _rr variants are close (within 15%).
	pure, _ := runCell(t, "lcf_central", 0.8, 17)
	rr, _ := runCell(t, "lcf_central_rr", 0.8, 17)
	if rr > pure*1.15 {
		t.Errorf("load 0.8: lcf_central_rr %.3f much worse than lcf_central %.3f", rr, pure)
	}
	// Beyond the crossover: the _rr variants win. Average over seeds to
	// stabilize the saturated regime.
	var pureHi, rrHi float64
	for seed := uint64(0); seed < 3; seed++ {
		p, _ := runCell(t, "lcf_central", 0.97, 100+seed)
		r, _ := runCell(t, "lcf_central_rr", 0.97, 100+seed)
		pureHi += p
		rrHi += r
	}
	if rrHi >= pureHi*1.05 {
		t.Errorf("load 0.97: lcf_central_rr %.3f did not drop below lcf_central %.3f", rrHi/3, pureHi/3)
	}
}

// TestClaimDistBetweenCentralAndPIM: "Compared with pim, lcf_dist has
// lower … latencies for a load up to 0.9" and "the distributed schedulers
// perform slightly worse than a central scheduler".
func TestClaimDistBetweenCentralAndPIM(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	const load = 0.85
	central, _ := runCell(t, "lcf_central", load, 19)
	dist, _ := runCell(t, "lcf_dist", load, 19)
	pim, _ := runCell(t, "pim", load, 19)
	if dist < central {
		t.Errorf("lcf_dist %.3f below lcf_central %.3f at load %g", dist, central, load)
	}
	if dist > pim {
		t.Errorf("lcf_dist %.3f above pim %.3f at load %g (paper: lower up to 0.9)", dist, pim, load)
	}
}

// TestClaimFIFOSaturates: "The fifo scheduler has the worst performance
// as it exhibits head-of-line blocking" — throughput caps near
// 2−√2 ≈ 0.586 while the VOQ schedulers sustain the offered load.
func TestClaimFIFOSaturates(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	_, fifoThr := runCell(t, "fifo", 1.0, 23)
	if fifoThr > 0.63 || fifoThr < 0.5 {
		t.Errorf("fifo saturation throughput %.3f, want ≈0.586", fifoThr)
	}
	_, lcfThr := runCell(t, "lcf_central_rr", 1.0, 23)
	if lcfThr < 0.9 {
		t.Errorf("lcf_central_rr saturation throughput %.3f, want ≈1", lcfThr)
	}
}

// TestClaimISLIPWavefrontSimilar: "islip and wfront seem to be similar in
// performance".
func TestClaimISLIPWavefrontSimilar(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	const load = 0.85
	islip, _ := runCell(t, "islip", load, 29)
	wf, _ := runCell(t, "wfront", load, 29)
	ratio := islip / wf
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("islip %.3f vs wfront %.3f: ratio %.2f outside similarity band", islip, wf, ratio)
	}
}

// TestClaimIterationsConverge: Section 6.2's premise that "a small number
// of iterations is normally sufficient to find a near-optimal schedule" —
// 4 iterations perform close to 8, while 1 iteration is measurably worse
// at high load.
func TestClaimIterationsConverge(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	delayAt := func(iters int) float64 {
		s, err := NewScheduler("lcf_dist", 16, Options{Iterations: iters, Seed: 31})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(SimConfig{
			N: 16, Scheduler: s, Load: 0.9, Seed: 31,
			WarmupSlots: 4000, MeasureSlots: 25000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Delay.Mean()
	}
	d1, d4, d8 := delayAt(1), delayAt(4), delayAt(8)
	if d1 <= d4 {
		t.Errorf("1 iteration (%.3f) not worse than 4 (%.3f)", d1, d4)
	}
	if d4 > d8*1.25 {
		t.Errorf("4 iterations (%.3f) far from converged 8 (%.3f)", d4, d8)
	}
}
