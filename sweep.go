package lcf

import (
	"repro/internal/experiment"
	"repro/internal/hwmodel"
	"repro/internal/mcast"
)

// SweepConfig parameterizes a load sweep across schedulers — the harness
// behind Figures 12a/12b. Zero values default to the paper's settings
// (16 ports, the full Figure 12 scheduler set plus outbuf, 4 iterations,
// uniform Bernoulli traffic, the default load grid).
type SweepConfig = experiment.Config

// SweepResult is the aggregated (scheduler × load) grid.
type SweepResult = experiment.Sweep

// SweepPoint is one cell of the grid.
type SweepPoint = experiment.Point

// OutbufName is the label of the output-buffered reference switch.
const OutbufName = experiment.OutbufName

// CICQName is the sweep label of the crosspoint-buffered (CICQ) switch;
// like OutbufName it names a switch organization, not a registry
// scheduler.
const CICQName = experiment.CICQName

// Sweep runs a load sweep, fanning independent simulations out over a
// bounded worker pool. Results are deterministic for a given SweepConfig
// regardless of worker count.
func Sweep(cfg SweepConfig) (*SweepResult, error) {
	return experiment.Run(cfg)
}

// DefaultLoads returns the Figure 12 load grid.
func DefaultLoads() []float64 { return experiment.DefaultLoads() }

// FormatSweepTable renders a sweep grid as an aligned text table.
func FormatSweepTable(cfg SweepConfig, grid map[string][]SweepPoint, value func(SweepPoint) float64) string {
	return experiment.FormatTable(cfg, grid, value)
}

// FormatSweepCSV renders a sweep grid as CSV.
func FormatSweepCSV(cfg SweepConfig, grid map[string][]SweepPoint, value func(SweepPoint) float64) string {
	return experiment.FormatCSV(cfg, grid, value)
}

// FormatSweepJSON renders a sweep grid as indented JSON with the full
// measurement set per point.
func FormatSweepJSON(cfg SweepConfig, grid map[string][]SweepPoint) (string, error) {
	return experiment.FormatJSON(cfg, grid)
}

// HardwareCost is the Table 1 reproduction: gate and register counts of
// the central LCF scheduler for an n-port switch, split into the n
// per-requester slices and the shared central logic.
type HardwareCost = hwmodel.Table1

// HardwareCostTable1 returns the Table 1 model (n=16 reproduces the
// published 450/86 per-slice and 767/216 central counts exactly).
func HardwareCostTable1(n int) HardwareCost { return hwmodel.CostTable1(n) }

// SchedulingTask is one row of the Table 2 reproduction.
type SchedulingTask = hwmodel.Task

// ClockHz is the Clint implementation's 66 MHz scheduler clock.
const ClockHz = hwmodel.ClockHz

// SchedulingTasksTable2 returns the Table 2 cycle decomposition (2n+1
// precalculated-schedule check, 3n+2 LCF calculation, 5n+3 total) with
// times at the given clock.
func SchedulingTasksTable2(n int, clockHz float64) []SchedulingTask {
	return hwmodel.CostTable2(n, clockHz)
}

// FairnessPoint is one scheduler's measured service distribution under
// saturating demand.
type FairnessPoint = experiment.FairnessPoint

// MeasureFairness runs every scheduler in cfg at the given load and
// reports min per-flow share, Jain index and throughput — the measured
// counterpart of Section 3's analytic b/n² guarantee.
func MeasureFairness(cfg SweepConfig, load float64) ([]FairnessPoint, error) {
	return experiment.Fairness(cfg, load)
}

// FormatFairness renders fairness points as an aligned table.
func FormatFairness(cfg SweepConfig, pts []FairnessPoint) string {
	return experiment.FormatFairness(cfg, pts)
}

// Multicast scheduling (the traffic class behind Section 4.3's
// precalculated schedule; reference [11] of the paper).
type (
	// MulticastPolicy selects the multicast discipline: NoSplitting
	// (Clint's all-or-nothing precalculated reservation), FewestFirst or
	// LargestFirst fanout splitting.
	MulticastPolicy = mcast.Policy
	// MulticastConfig parameterizes SimulateMulticast.
	MulticastConfig = mcast.SimConfig
	// MulticastResult carries copy throughput and cell-delay measurements.
	MulticastResult = mcast.SimResult
)

// Multicast policies.
const (
	NoSplitting  = mcast.NoSplitting
	FewestFirst  = mcast.FewestFirst
	LargestFirst = mcast.LargestFirst
)

// SimulateMulticast runs a multicast switch simulation.
func SimulateMulticast(cfg MulticastConfig) (*MulticastResult, error) {
	return mcast.Simulate(cfg)
}

// CentralCommBits returns the per-scheduling-cycle signalling volume of
// the central scheduler, n·(n + log2 n + 1) bits (Section 6.2).
func CentralCommBits(n int) int { return hwmodel.CentralCommBits(n) }

// DistCommBits returns the distributed scheduler's signalling volume,
// i·n²·(2·log2 n + 3) bits (Section 6.2).
func DistCommBits(n, iterations int) int { return hwmodel.DistCommBits(n, iterations) }

// ArbiterRow is one line of the arbiter implementation comparison.
type ArbiterRow = hwmodel.ArbiterRow

// CompareArbiters returns the cycles/gates/registers/wiring comparison of
// the three implementable schedulers (central LCF, WWFA, distributed LCF).
func CompareArbiters(n, iterations int) []ArbiterRow {
	return hwmodel.CompareArbiters(n, iterations)
}

// Packaging is the Section 6.2 modularization pin-count model.
type Packaging = hwmodel.Packaging

// PackagingPins returns per-line-card and backplane scheduling-signal
// counts for the central-on-backplane vs distributed-on-line-cards
// packaging options.
func PackagingPins(n, iterations int) Packaging { return hwmodel.PackagingModel(n, iterations) }
